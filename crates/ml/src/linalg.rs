//! Minimal dense linear algebra.
//!
//! Row-major [`Matrix`] with exactly the operations the model trainers need:
//! products, transposes, Cholesky factorisation (for SPD normal equations)
//! and partial-pivot LU (for the indefinite LS-SVM saddle system). Matrices
//! here are at most a few thousand rows, so straightforward loops are both
//! clear and fast enough; the hot paths iterate rows contiguously to stay
//! cache-friendly per the hpc guides.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`. Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, r) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Gram matrix `selfᵀ * self` (symmetric, computed once per triangle).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for row in 0..self.rows {
            let r = self.row(row);
            for i in 0..n {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += ri * r[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Adds `value` to every diagonal entry (Tikhonov / jitter).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Solves `self * x = b` for symmetric positive-definite `self` via
    /// Cholesky. Returns `None` if the matrix is not SPD (within roundoff).
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires square matrix");
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        let n = self.rows;
        // Lower-triangular factor L with self = L Lᵀ.
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward substitution L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Some(x)
    }

    /// Solves `self * x = b` via LU with partial pivoting. Returns `None`
    /// for (numerically) singular systems.
    pub fn solve_lu(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires square matrix");
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Pivot: largest magnitude in this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[perm[col] * n + col].abs();
            for r in col + 1..n {
                let v = a[perm[r] * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return None;
            }
            perm.swap(col, pivot_row);
            let p = perm[col];
            let pivot = a[p * n + col];
            for &row in &perm[col + 1..] {
                let factor = a[row * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[row * n + col] = 0.0;
                for c in col + 1..n {
                    a[row * n + c] -= factor * a[p * n + c];
                }
                x[row] -= factor * x[p];
            }
        }
        // Back substitution on the permuted triangular system.
        let mut out = vec![0.0; n];
        for i in (0..n).rev() {
            let row = perm[i];
            let mut sum = x[row];
            for c in i + 1..n {
                sum -= a[row * n + c] * out[c];
            }
            out[i] = sum / a[row * n + i];
        }
        Some(out)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let c = a.matmul(&Matrix::identity(3));
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn gram_is_xtx() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = x.gram();
        let expect = x.transpose().matmul(&x);
        assert_eq!(g, expect);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [8, 7] -> x = [1.3..., ...]; verify A x = b.
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = a.solve_spd(&[8.0, 7.0]).unwrap();
        let back = a.matvec(&x);
        assert!((back[0] - 8.0).abs() < 1e-10);
        assert!((back[1] - 7.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(a.solve_spd(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn lu_solves_general_system() {
        // Indefinite but nonsingular (the LS-SVM saddle shape).
        let a = Matrix::from_rows(&[
            vec![0.0, 1.0, 1.0],
            vec![1.0, 2.0, 0.5],
            vec![1.0, 0.5, 2.0],
        ]);
        let b = [1.0, 2.0, 3.0];
        let x = a.solve_lu(&b).unwrap();
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(b) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve_lu(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn lu_and_cholesky_agree_on_spd() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let b = [1.0, -2.0, 3.0];
        let x1 = a.solve_spd(&b).unwrap();
        let x2 = a.solve_lu(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn add_diagonal_shifts_eigenvalues() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(3.0);
        assert_eq!(a, Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 3.0]]));
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
