//! The end-to-end F2PM pipeline.
//!
//! "All measurements are fed into an automatic ML toolchain. The goal of
//! this toolchain is to generate and validate alternative ML models for
//! predicting the Remaining Time To Failure, as well as to select (via
//! Lasso regularization) what are the most relevant system features"
//! (paper Sec. III). [`F2pmToolchain::run`] does exactly that:
//!
//! 1. fit a Lasso on the full feature set and keep the features whose
//!    standardised weight passes a threshold,
//! 2. train every family in the menu on the projected training split
//!    (in parallel via rayon — the families are independent),
//! 3. score each on the holdout and rank by RMSE,
//! 4. return the winner wrapped as an [`RttfPredictor`] that accepts the
//!    *full* feature vector at runtime and projects internally.

use crate::dataset::Dataset;
use crate::lasso::LassoRegression;
use crate::metrics::RegressionMetrics;
use crate::model::{AnyModel, ModelKind, Regressor};
use crate::validate::evaluate;
use acm_obs::{Obs, Timer};
use acm_sim::rng::SimRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Toolchain configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct F2pmToolchain {
    /// Fraction of the database used for training (rest is holdout).
    pub train_frac: f64,
    /// Lasso strength for feature selection; `None` = data-driven default.
    pub lasso_alpha: Option<f64>,
    /// Keep features whose standardised |weight| exceeds this *fraction of
    /// the largest* standardised weight (scale-invariant).
    pub selection_threshold: f64,
    /// Which families to train.
    pub models: Vec<ModelKind>,
}

impl Default for F2pmToolchain {
    fn default() -> Self {
        F2pmToolchain {
            train_frac: 0.75,
            lasso_alpha: None,
            selection_threshold: 0.02,
            models: ModelKind::ALL.to_vec(),
        }
    }
}

/// Outcome of one model family in the toolchain run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelOutcome {
    /// Family.
    pub kind: ModelKind,
    /// Holdout metrics.
    pub metrics: RegressionMetrics,
}

/// Report of a toolchain run: the Lasso selection plus the ranked menu.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F2pmReport {
    /// Indices (into the full feature vector) of the selected features.
    pub selected_features: Vec<usize>,
    /// Names of the selected features.
    pub selected_names: Vec<String>,
    /// Per-family holdout outcomes, best (lowest RMSE) first.
    pub outcomes: Vec<ModelOutcome>,
    /// Rows used for training / holdout.
    pub train_rows: usize,
    /// Rows in the holdout set.
    pub holdout_rows: usize,
}

impl F2pmReport {
    /// The winning family.
    pub fn best_kind(&self) -> ModelKind {
        self.outcomes[0].kind
    }

    /// Outcome of a specific family, if it was trained.
    pub fn outcome_of(&self, kind: ModelKind) -> Option<&ModelOutcome> {
        self.outcomes.iter().find(|o| o.kind == kind)
    }

    /// Renders the ranking as an aligned text table (model-selection bench).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>8} {:>8}",
            "model", "MAE", "RMSE", "R2", "MAPE%"
        );
        for o in &self.outcomes {
            let _ = writeln!(
                out,
                "{:<10} {:>10.3} {:>10.3} {:>8.4} {:>8.1}",
                o.kind.name(),
                o.metrics.mae,
                o.metrics.rmse,
                o.metrics.r2,
                o.metrics.mape * 100.0
            );
        }
        out
    }
}

/// A deployable RTTF predictor: the winning model plus the feature
/// projection chosen by Lasso. Predictions are clamped to be non-negative —
/// a remaining time to failure below zero is meaningless to the controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttfPredictor {
    model: AnyModel,
    selected: Vec<usize>,
}

impl RttfPredictor {
    /// Wraps an already-trained model with its feature projection.
    pub fn new(model: AnyModel, selected: Vec<usize>) -> Self {
        RttfPredictor { model, selected }
    }

    /// Predicts RTTF (seconds, ≥ 0) from the full runtime feature vector.
    pub fn predict(&self, full_features: &[f64]) -> f64 {
        let projected: Vec<f64> = self.selected.iter().map(|&j| full_features[j]).collect();
        self.model.predict_one(&projected).max(0.0)
    }

    /// Batch variant of [`RttfPredictor::predict`]: projects every full
    /// feature row into one packed scratch buffer, predicts in a single
    /// batched pass (the tree walks its compact arena back to back), and
    /// clamps exactly like the scalar path. `out` is cleared and refilled
    /// index-aligned with the input rows.
    pub fn predict_batch_into<'a, I>(&self, full_rows: I, out: &mut Vec<f64>)
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let width = self.selected.len();
        let mut rows = 0usize;
        let mut packed: Vec<f64> = Vec::new();
        for row in full_rows {
            packed.extend(self.selected.iter().map(|&j| row[j]));
            rows += 1;
        }
        out.clear();
        if width == 0 {
            // Degenerate projection: every row predicts the empty-slice value.
            out.extend((0..rows).map(|_| self.model.predict_one(&[]).max(0.0)));
            return;
        }
        match &self.model {
            AnyModel::RepTree(m) => m.predict_batch_into(packed.chunks_exact(width), out),
            m => out.extend(packed.chunks_exact(width).map(|p| m.predict_one(p))),
        }
        for v in out.iter_mut() {
            *v = v.max(0.0);
        }
    }

    /// Batch variant of [`RttfPredictor::predict`] returning a fresh vector.
    pub fn predict_batch(&self, full_rows: &[Vec<f64>]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_batch_into(full_rows.iter().map(|r| r.as_slice()), &mut out);
        out
    }

    /// Which family the deployed model belongs to.
    pub fn kind(&self) -> ModelKind {
        self.model.kind()
    }

    /// The feature indices the predictor consumes.
    pub fn selected_features(&self) -> &[usize] {
        &self.selected
    }
}

impl F2pmToolchain {
    /// Runs the pipeline on a feature database. Returns the deployable
    /// predictor (best family) and the full report. Un-instrumented
    /// convenience over [`F2pmToolchain::run_with_obs`].
    pub fn run(&self, db: &Dataset, rng: &mut SimRng) -> (RttfPredictor, F2pmReport) {
        self.run_with_obs(db, rng, &Obs::noop())
    }

    /// [`F2pmToolchain::run`] with per-phase training timers published to
    /// `obs`: `acm.ml.toolchain.lasso_ns` (feature selection),
    /// `acm.ml.toolchain.fit_ns.<family>` (one histogram per family) and
    /// `acm.ml.toolchain.score_ns` (holdout scoring, all families) — so
    /// `model_selection` can report where training time goes. Timers read
    /// wall-clock only; results are identical to [`F2pmToolchain::run`].
    pub fn run_with_obs(
        &self,
        db: &Dataset,
        rng: &mut SimRng,
        obs: &Obs,
    ) -> (RttfPredictor, F2pmReport) {
        assert!(
            db.len() >= 20,
            "feature database too small ({} rows)",
            db.len()
        );
        assert!(!self.models.is_empty(), "no model families configured");

        // 1. Lasso feature selection on the full database.
        let lasso_span = obs.timer("acm.ml.toolchain.lasso_ns").start();
        let alpha = self
            .lasso_alpha
            .unwrap_or_else(|| LassoRegression::default_alpha(db));
        let lasso = LassoRegression::fit(db, alpha);
        let max_w = lasso
            .std_weights()
            .iter()
            .fold(0.0_f64, |m, w| m.max(w.abs()));
        let mut selected = lasso.selected_features(self.selection_threshold * max_w);
        if selected.is_empty() {
            // Degenerate target: fall back to all features so the menu can
            // still train (they will all predict ~the mean).
            selected = (0..db.width()).collect();
        }
        drop(lasso_span);
        let projected = db.project(&selected);

        // 2. Split once; every family sees the same split.
        let (train, holdout) = projected.split(self.train_frac, rng);

        // 3. Train the menu in parallel, each family with its own
        //    deterministic RNG stream and fit timer (resolved here, off
        //    the parallel path — registry resolution takes a lock).
        let score_timer = obs.timer("acm.ml.toolchain.score_ns");
        let jobs: Vec<(ModelKind, SimRng, Timer)> = self
            .models
            .iter()
            .map(|&kind| {
                let timer = obs.timer(&format!("acm.ml.toolchain.fit_ns.{}", kind.name()));
                (kind, rng.split(), timer)
            })
            .collect();
        let mut results: Vec<(AnyModel, ModelOutcome)> = jobs
            .into_par_iter()
            .map(|(kind, mut model_rng, fit_timer)| {
                let model = {
                    let _fit = fit_timer.start();
                    kind.fit(&train, &mut model_rng)
                };
                let metrics = {
                    let _score = score_timer.start();
                    evaluate(&model, &holdout)
                };
                (model, ModelOutcome { kind, metrics })
            })
            .collect();

        // 4. Rank by holdout RMSE.
        results.sort_by(|a, b| {
            a.1.metrics
                .rmse
                .partial_cmp(&b.1.metrics.rmse)
                .expect("finite RMSE")
        });

        let report = F2pmReport {
            selected_names: selected
                .iter()
                .map(|&j| db.feature_names()[j].clone())
                .collect(),
            selected_features: selected.clone(),
            outcomes: results.iter().map(|(_, o)| o.clone()).collect(),
            train_rows: train.len(),
            holdout_rows: holdout.len(),
        };
        let best_model = results.swap_remove(0).0;
        (RttfPredictor::new(best_model, selected), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RTTF-like synthetic database: target driven by two of five features.
    fn rttf_db(n: usize, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut db = Dataset::new(["resident", "swap", "threads", "noise1", "noise2"]);
        for _ in 0..n {
            let resident = rng.uniform(500.0, 4000.0);
            let swap = rng.uniform(0.0, 500.0);
            let threads = rng.uniform(90.0, 900.0);
            let n1 = rng.uniform(0.0, 1.0);
            let n2 = rng.uniform(0.0, 1.0);
            // RTTF shrinks as resident/threads grow.
            let rttf =
                (5000.0 - resident - 2.0 * threads - 3.0 * swap).max(0.0) + rng.normal(0.0, 20.0);
            db.push(vec![resident, swap, threads, n1, n2], rttf);
        }
        db
    }

    #[test]
    fn pipeline_selects_informative_features_and_a_good_model() {
        let db = rttf_db(600, 1);
        let tc = F2pmToolchain::default();
        let mut rng = SimRng::new(2);
        let (predictor, report) = tc.run(&db, &mut rng);
        // Noise features must be dropped.
        assert!(report.selected_names.contains(&"resident".to_string()));
        assert!(report.selected_names.contains(&"threads".to_string()));
        assert!(!report.selected_names.contains(&"noise1".to_string()));
        // The winner must explain the target well.
        assert!(report.outcomes[0].metrics.r2 > 0.9, "{}", report.to_table());
        // The deployed predictor consumes the FULL feature vector.
        let p = predictor.predict(&[1000.0, 0.0, 200.0, 0.5, 0.5]);
        assert!((p - 3600.0).abs() < 300.0, "prediction {p}");
    }

    #[test]
    fn predictions_are_clamped_non_negative() {
        let db = rttf_db(300, 3);
        let tc = F2pmToolchain::default();
        let mut rng = SimRng::new(4);
        let (predictor, _) = tc.run(&db, &mut rng);
        // Far beyond exhaustion: raw model would go negative.
        let p = predictor.predict(&[10_000.0, 500.0, 2000.0, 0.0, 0.0]);
        assert!(p >= 0.0);
    }

    #[test]
    fn batch_prediction_matches_scalar_path() {
        let db = rttf_db(400, 15);
        // Force the deployed model to be the tree so the compact-arena
        // batch walk is the path under test.
        let tc = F2pmToolchain {
            models: vec![ModelKind::RepTree],
            ..Default::default()
        };
        let (predictor, _) = tc.run(&db, &mut SimRng::new(16));
        assert_eq!(predictor.kind(), ModelKind::RepTree);
        let mut rng = SimRng::new(17);
        let rows: Vec<Vec<f64>> = (0..123)
            .map(|_| {
                vec![
                    rng.uniform(500.0, 4000.0),
                    rng.uniform(0.0, 500.0),
                    rng.uniform(90.0, 900.0),
                    rng.uniform(0.0, 1.0),
                    rng.uniform(0.0, 1.0),
                ]
            })
            .collect();
        let batch = predictor.predict_batch(&rows);
        assert_eq!(batch.len(), rows.len());
        for (row, b) in rows.iter().zip(&batch) {
            assert_eq!(*b, predictor.predict(row));
        }
    }

    #[test]
    fn ranking_is_sorted_by_rmse() {
        let db = rttf_db(300, 5);
        let tc = F2pmToolchain::default();
        let mut rng = SimRng::new(6);
        let (_, report) = tc.run(&db, &mut rng);
        let rmses: Vec<f64> = report.outcomes.iter().map(|o| o.metrics.rmse).collect();
        assert!(rmses.windows(2).all(|w| w[0] <= w[1]), "{rmses:?}");
        assert_eq!(report.outcomes.len(), ModelKind::ALL.len());
        assert_eq!(report.best_kind(), report.outcomes[0].kind);
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let db = rttf_db(300, 7);
        let tc = F2pmToolchain::default();
        let (_, r1) = tc.run(&db, &mut SimRng::new(8));
        let (_, r2) = tc.run(&db, &mut SimRng::new(8));
        assert_eq!(r1.selected_features, r2.selected_features);
        let k1: Vec<ModelKind> = r1.outcomes.iter().map(|o| o.kind).collect();
        let k2: Vec<ModelKind> = r2.outcomes.iter().map(|o| o.kind).collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn restricted_menu_trains_only_requested_families() {
        let db = rttf_db(200, 9);
        let tc = F2pmToolchain {
            models: vec![ModelKind::RepTree, ModelKind::Linear],
            ..Default::default()
        };
        let (_, report) = tc.run(&db, &mut SimRng::new(10));
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.outcome_of(ModelKind::Svr).is_none());
        assert!(report.outcome_of(ModelKind::RepTree).is_some());
    }

    #[test]
    fn table_render_contains_all_rows() {
        let db = rttf_db(200, 11);
        let (_, report) = F2pmToolchain::default().run(&db, &mut SimRng::new(12));
        let table = report.to_table();
        for kind in ModelKind::ALL {
            assert!(table.contains(kind.name()), "missing {kind} in\n{table}");
        }
    }

    #[test]
    fn run_with_obs_times_every_training_phase() {
        use acm_obs::{MetricValue, ObsConfig};
        let db = rttf_db(300, 20);
        let tc = F2pmToolchain::default();
        let obs = Obs::new(ObsConfig::default());
        let (_, report) = tc.run_with_obs(&db, &mut SimRng::new(21), &obs);

        let hist_count = |name: &str| -> u64 {
            match obs
                .metrics()
                .into_iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .value
            {
                MetricValue::Histogram(h) => h.count,
                other => panic!("{name} is not a histogram: {other:?}"),
            }
        };
        assert_eq!(hist_count("acm.ml.toolchain.lasso_ns"), 1);
        for kind in ModelKind::ALL {
            assert_eq!(
                hist_count(&format!("acm.ml.toolchain.fit_ns.{}", kind.name())),
                1,
                "one fit per family"
            );
        }
        assert_eq!(
            hist_count("acm.ml.toolchain.score_ns"),
            ModelKind::ALL.len() as u64
        );

        // Instrumentation must not change the result.
        let (_, bare) = tc.run(&db, &mut SimRng::new(21));
        assert_eq!(format!("{report:?}"), format!("{bare:?}"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_database_panics() {
        let db = rttf_db(10, 13);
        let _ = F2pmToolchain::default().run(&db, &mut SimRng::new(14));
    }
}
