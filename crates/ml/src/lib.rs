//! F2PM machine-learning toolchain.
//!
//! F2PM (paper ref \[26\]) is the framework that turns the monitored system
//! features into Remaining-Time-To-Failure predictors. Its pipeline is:
//!
//! 1. collect a feature database from instrumented runs,
//! 2. select the relevant features via **Lasso regularisation**,
//! 3. train a menu of models — **linear regression, M5P, REP-Tree, Lasso as
//!    a predictor, SVM, Least-Squares SVM** (paper Sec. III),
//! 4. report validation metrics so the user can pick the best model (the
//!    paper picked REP-Tree).
//!
//! Everything is implemented from scratch on a small dense linear-algebra
//! core — no external ML dependency exists in the approved set, and the
//! models are small enough that clarity beats BLAS.
//!
//! # Layout
//!
//! * [`linalg`] — dense matrices, Cholesky / partial-pivot LU solvers.
//! * [`dataset`] — feature matrix + target vector, splits, projections.
//! * [`scaler`] — z-score standardisation.
//! * [`metrics`] — MAE, RMSE, R², MAPE.
//! * [`linear`], [`ridge`], [`lasso`] — linear family (normal equations,
//!   Tikhonov, coordinate descent with soft thresholding).
//! * [`rep_tree`] — variance-reduction regression tree with reduced-error
//!   pruning (the model the paper deploys).
//! * [`m5p`] — M5 model tree: linear models at the leaves with smoothing.
//! * [`svr`] — linear ε-insensitive SVR trained by averaged SGD.
//! * [`lssvm`] — least-squares SVM with RBF kernel (direct solve).
//! * [`model`] — the common [`Regressor`] interface and
//!   the [`ModelKind`] menu.
//! * [`tuning`] — cross-validated hyper-parameter grid search.
//! * [`validate`] — holdout and k-fold evaluation.
//! * [`toolchain`] — the end-to-end F2PM pipeline used by the controllers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod lasso;
pub mod linalg;
pub mod linear;
pub mod lssvm;
pub mod m5p;
pub mod metrics;
pub mod model;
pub mod rep_tree;
pub mod ridge;
pub mod scaler;
pub mod svr;
pub mod toolchain;
pub mod tuning;
pub mod validate;

pub use dataset::Dataset;
pub use model::{AnyModel, ModelKind, Regressor};
pub use toolchain::{F2pmReport, F2pmToolchain, RttfPredictor};
