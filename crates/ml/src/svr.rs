//! Linear ε-insensitive support-vector regression (paper ref \[31\]).
//!
//! Trained in the primal by Pegasos-style stochastic subgradient descent on
//! standardised features and target: minimise
//! `λ/2 ‖w‖² + (1/n) Σ max(0, |y − w·x − b| − ε)`.
//! Averaging the iterates over the final epochs gives the usual variance
//! reduction. This is the "SVM" entry of the F2PM model menu.

use crate::dataset::Dataset;
use crate::linalg::dot;
use crate::scaler::{StandardScaler, TargetScaler};
use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// SVR hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrConfig {
    /// Width of the ε-insensitive tube (standardised target units).
    pub epsilon: f64,
    /// Regularisation strength λ.
    pub lambda: f64,
    /// Passes over the training data.
    pub epochs: usize,
}

impl Default for SvrConfig {
    fn default() -> Self {
        SvrConfig {
            epsilon: 0.05,
            lambda: 1e-4,
            epochs: 60,
        }
    }
}

/// A trained linear SVR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvr {
    /// Weights on the standardised feature scale.
    w: Vec<f64>,
    b: f64,
    x_scaler: StandardScaler,
    y_scaler: TargetScaler,
}

impl LinearSvr {
    /// Fits by averaged SGD. `rng` shuffles the sample order each epoch.
    pub fn fit(ds: &Dataset, cfg: &SvrConfig, rng: &mut SimRng) -> Self {
        assert!(!ds.is_empty(), "cannot fit on empty dataset");
        assert!(
            cfg.epsilon >= 0.0 && cfg.lambda > 0.0 && cfg.epochs > 0,
            "bad SVR config"
        );
        let x_scaler = StandardScaler::fit(ds.rows());
        let y_scaler = TargetScaler::fit(ds.targets());
        let xs = x_scaler.transform(ds.rows());
        let ys: Vec<f64> = ds
            .targets()
            .iter()
            .map(|&y| y_scaler.transform(y))
            .collect();

        let n = xs.len();
        let p = ds.width();
        let mut w = vec![0.0; p];
        let mut b = 0.0;
        let mut w_avg = vec![0.0; p];
        let mut b_avg = 0.0;
        let mut avg_count = 0u64;
        let avg_start = cfg.epochs / 2; // average the second half

        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0u64;
        for epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (cfg.lambda * t as f64);
                let err = ys[i] - (dot(&w, &xs[i]) + b);
                // Shrink (the subgradient of the L2 term).
                let shrink = 1.0 - eta * cfg.lambda;
                for wj in &mut w {
                    *wj *= shrink;
                }
                if err.abs() > cfg.epsilon {
                    let g = err.signum();
                    // Normalise the data-term step by n so λ and the loss
                    // stay on the objective's scale.
                    let step = eta * g;
                    for (wj, xj) in w.iter_mut().zip(&xs[i]) {
                        *wj += step * xj;
                    }
                    b += step;
                }
                if epoch >= avg_start {
                    for (a, wj) in w_avg.iter_mut().zip(&w) {
                        *a += wj;
                    }
                    b_avg += b;
                    avg_count += 1;
                }
            }
        }
        if avg_count > 0 {
            for a in &mut w_avg {
                *a /= avg_count as f64;
            }
            b_avg /= avg_count as f64;
        } else {
            w_avg = w;
            b_avg = b;
        }
        LinearSvr {
            w: w_avg,
            b: b_avg,
            x_scaler,
            y_scaler,
        }
    }

    /// Predicts one row (original units).
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        let xs = self.x_scaler.transform_row(x);
        self.y_scaler.inverse(dot(&self.w, &xs) + self.b)
    }

    /// Weights on the standardised scale (for inspection).
    pub fn std_weights(&self) -> &[f64] {
        &self.w
    }
}

impl crate::model::Regressor for LinearSvr {
    fn predict_one(&self, x: &[f64]) -> f64 {
        LinearSvr::predict_one(self, x)
    }
    fn name(&self) -> &'static str {
        "svr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_ds(n: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["a", "b"]);
        for _ in 0..n {
            let a = rng.uniform(-2.0, 2.0);
            let b = rng.uniform(-2.0, 2.0);
            ds.push(vec![a, b], 3.0 * a - b + 2.0 + rng.normal(0.0, noise));
        }
        ds
    }

    #[test]
    fn fits_a_clean_linear_target() {
        let ds = linear_ds(500, 0.0, 1);
        let m = LinearSvr::fit(&ds, &SvrConfig::default(), &mut SimRng::new(2));
        for (x, want) in [([1.0, 0.0], 5.0), ([0.0, 1.0], 1.0), ([1.0, 1.0], 4.0)] {
            let p = m.predict_one(&x);
            assert!((p - want).abs() < 0.3, "f({x:?}) = {p}, want {want}");
        }
    }

    #[test]
    fn robust_to_outliers_compared_to_ols() {
        // Contaminate 5% of targets with huge outliers: the ε-insensitive
        // loss (L1-like) should resist them better than squared loss.
        let mut ds = linear_ds(500, 0.05, 3);
        let mut rng = SimRng::new(4);
        let mut contaminated = Dataset::new(["a", "b"]);
        for i in 0..ds.len() {
            let mut y = ds.target(i);
            if rng.bernoulli(0.05) {
                y += 100.0;
            }
            contaminated.push(ds.row(i).to_vec(), y);
        }
        ds = contaminated;
        let svr = LinearSvr::fit(&ds, &SvrConfig::default(), &mut SimRng::new(5));
        let ols = crate::linear::LinearRegression::fit(&ds);
        let truth = |a: f64, b: f64| 3.0 * a - b + 2.0;
        let mut svr_err = 0.0;
        let mut ols_err = 0.0;
        for (a, b) in [(1.0, 1.0), (-1.0, 0.5), (0.0, 0.0), (2.0, -2.0)] {
            svr_err += (svr.predict_one(&[a, b]) - truth(a, b)).abs();
            ols_err += (ols.predict_one(&[a, b]) - truth(a, b)).abs();
        }
        assert!(svr_err < ols_err, "svr {svr_err} vs ols {ols_err}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = linear_ds(200, 0.1, 6);
        let a = LinearSvr::fit(&ds, &SvrConfig::default(), &mut SimRng::new(7));
        let b = LinearSvr::fit(&ds, &SvrConfig::default(), &mut SimRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn wide_tube_predicts_coarsely() {
        // With ε larger than the target spread nothing is penalised, so the
        // model stays near zero (i.e. predicts the mean after unscaling).
        let ds = linear_ds(300, 0.1, 8);
        let cfg = SvrConfig {
            epsilon: 10.0,
            ..Default::default()
        };
        let m = LinearSvr::fit(&ds, &cfg, &mut SimRng::new(9));
        let p = m.predict_one(&[0.0, 0.0]);
        assert!((p - ds.target_mean()).abs() < 1.0, "{p}");
    }

    #[test]
    #[should_panic(expected = "bad SVR config")]
    fn zero_epochs_panics() {
        let ds = linear_ds(10, 0.0, 10);
        let cfg = SvrConfig {
            epochs: 0,
            ..Default::default()
        };
        let _ = LinearSvr::fit(&ds, &cfg, &mut SimRng::new(11));
    }
}
