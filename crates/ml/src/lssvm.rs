//! Least-squares SVM regression with an RBF kernel (Suykens & Vandewalle;
//! paper ref \[32\]).
//!
//! LS-SVM replaces the ε-insensitive loss with squared loss, turning
//! training into one linear solve of the saddle system
//!
//! ```text
//! [ 0   1ᵀ          ] [ b ]   [ 0 ]
//! [ 1   K + I/γ     ] [ α ] = [ y ]
//! ```
//!
//! where `K` is the RBF Gram matrix. The system is indefinite, so we use the
//! partial-pivot LU solver. Training cost is cubic in the number of support
//! points, so datasets larger than [`LsSvmConfig::max_support`] are
//! subsampled (documented, deterministic) — standard practice for fixed-size
//! LS-SVM.

use crate::dataset::Dataset;
use crate::linalg::Matrix;
use crate::scaler::{StandardScaler, TargetScaler};
use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// LS-SVM hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LsSvmConfig {
    /// Regularisation γ (larger = less regularisation).
    pub gamma: f64,
    /// RBF bandwidth σ; `None` uses the median pairwise-distance heuristic.
    pub sigma: Option<f64>,
    /// Maximum number of support points (larger training sets are
    /// subsampled deterministically).
    pub max_support: usize,
}

impl Default for LsSvmConfig {
    fn default() -> Self {
        LsSvmConfig {
            gamma: 50.0,
            sigma: None,
            max_support: 400,
        }
    }
}

/// A trained LS-SVM regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LsSvm {
    support: Vec<Vec<f64>>, // standardised support points
    alphas: Vec<f64>,
    bias: f64,
    sigma: f64,
    x_scaler: StandardScaler,
    y_scaler: TargetScaler,
}

impl LsSvm {
    /// Fits the model. `rng` only matters when subsampling kicks in.
    pub fn fit(ds: &Dataset, cfg: &LsSvmConfig, rng: &mut SimRng) -> Self {
        assert!(!ds.is_empty(), "cannot fit on empty dataset");
        assert!(cfg.gamma > 0.0, "gamma must be positive");
        assert!(cfg.max_support >= 2, "need at least two support points");

        // Deterministic subsample when the dataset is too large.
        let ds_owned;
        let ds = if ds.len() > cfg.max_support {
            let mut idx: Vec<usize> = (0..ds.len()).collect();
            rng.shuffle(&mut idx);
            idx.truncate(cfg.max_support);
            ds_owned = ds.subset(&idx);
            &ds_owned
        } else {
            ds
        };

        let x_scaler = StandardScaler::fit(ds.rows());
        let y_scaler = TargetScaler::fit(ds.targets());
        let xs = x_scaler.transform(ds.rows());
        let ys: Vec<f64> = ds
            .targets()
            .iter()
            .map(|&y| y_scaler.transform(y))
            .collect();

        let sigma = cfg.sigma.unwrap_or_else(|| median_distance(&xs, rng));
        let n = xs.len();

        // Assemble the (n+1) saddle system.
        let mut a = Matrix::zeros(n + 1, n + 1);
        let mut rhs = vec![0.0; n + 1];
        for i in 0..n {
            a[(0, i + 1)] = 1.0;
            a[(i + 1, 0)] = 1.0;
            rhs[i + 1] = ys[i];
            for j in i..n {
                let k = rbf(&xs[i], &xs[j], sigma);
                a[(i + 1, j + 1)] = k;
                a[(j + 1, i + 1)] = k;
            }
            a[(i + 1, i + 1)] += 1.0 / cfg.gamma;
        }
        let sol = a
            .solve_lu(&rhs)
            .expect("LS-SVM saddle system must be nonsingular for γ > 0");
        LsSvm {
            support: xs,
            alphas: sol[1..].to_vec(),
            bias: sol[0],
            sigma,
            x_scaler,
            y_scaler,
        }
    }

    /// Predicts one row (original units).
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        let xs = self.x_scaler.transform_row(x);
        let f: f64 = self
            .support
            .iter()
            .zip(&self.alphas)
            .map(|(s, a)| a * rbf(s, &xs, self.sigma))
            .sum::<f64>()
            + self.bias;
        self.y_scaler.inverse(f)
    }

    /// Number of support points retained.
    pub fn support_count(&self) -> usize {
        self.support.len()
    }

    /// RBF bandwidth actually used.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl crate::model::Regressor for LsSvm {
    fn predict_one(&self, x: &[f64]) -> f64 {
        LsSvm::predict_one(self, x)
    }
    fn name(&self) -> &'static str {
        "ls-svm"
    }
}

/// Gaussian kernel `exp(−‖a−b‖² / (2σ²))`.
fn rbf(a: &[f64], b: &[f64], sigma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-d2 / (2.0 * sigma * sigma)).exp()
}

/// Median pairwise distance over a bounded random sample of pairs — the
/// standard bandwidth heuristic. Falls back to 1.0 for degenerate data.
fn median_distance(xs: &[Vec<f64>], rng: &mut SimRng) -> f64 {
    if xs.len() < 2 {
        return 1.0;
    }
    let pairs = 500.min(xs.len() * (xs.len() - 1) / 2);
    let mut dists: Vec<f64> = (0..pairs)
        .map(|_| {
            let i = rng.index(xs.len());
            let mut j = rng.index(xs.len());
            while j == i {
                j = rng.index(xs.len());
            }
            xs[i]
                .iter()
                .zip(&xs[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        })
        .filter(|d| *d > 0.0)
        .collect();
    if dists.is_empty() {
        return 1.0;
    }
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    dists[dists.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_kernel_properties() {
        let a = [1.0, 2.0];
        assert_eq!(rbf(&a, &a, 1.0), 1.0);
        let far = rbf(&a, &[10.0, 10.0], 1.0);
        assert!(far < 1e-10);
        // Symmetry.
        let b = [0.5, 1.5];
        assert_eq!(rbf(&a, &b, 2.0), rbf(&b, &a, 2.0));
    }

    #[test]
    fn fits_a_nonlinear_function() {
        // y = sin(x): linear models cannot, RBF can.
        let mut ds = Dataset::new(["x"]);
        let mut rng = SimRng::new(1);
        for _ in 0..300 {
            let x = rng.uniform(-3.0, 3.0);
            ds.push(vec![x], x.sin());
        }
        let m = LsSvm::fit(&ds, &LsSvmConfig::default(), &mut SimRng::new(2));
        for x in [-2.0, -1.0, 0.0, 1.0, 2.0] {
            let p = m.predict_one(&[x]);
            assert!((p - x.sin()).abs() < 0.1, "f({x}) = {p}, want {}", x.sin());
        }
    }

    #[test]
    fn subsamples_large_datasets() {
        let mut ds = Dataset::new(["x"]);
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform(0.0, 1.0);
            ds.push(vec![x], 2.0 * x);
        }
        let cfg = LsSvmConfig {
            max_support: 100,
            ..Default::default()
        };
        let m = LsSvm::fit(&ds, &cfg, &mut SimRng::new(4));
        assert_eq!(m.support_count(), 100);
        assert!((m.predict_one(&[0.5]) - 1.0).abs() < 0.1);
    }

    #[test]
    fn explicit_sigma_is_honoured() {
        let mut ds = Dataset::new(["x"]);
        for i in 0..50 {
            ds.push(vec![i as f64], i as f64);
        }
        let cfg = LsSvmConfig {
            sigma: Some(2.5),
            ..Default::default()
        };
        let m = LsSvm::fit(&ds, &cfg, &mut SimRng::new(5));
        assert_eq!(m.sigma(), 2.5);
    }

    #[test]
    fn heavy_regularisation_flattens_prediction() {
        let mut ds = Dataset::new(["x"]);
        let mut rng = SimRng::new(6);
        for _ in 0..200 {
            let x = rng.uniform(-1.0, 1.0);
            ds.push(vec![x], 5.0 * x);
        }
        let tight = LsSvm::fit(
            &ds,
            &LsSvmConfig {
                gamma: 1e-4,
                ..Default::default()
            },
            &mut SimRng::new(7),
        );
        // γ→0 forces α→0: prediction collapses toward the bias ≈ mean.
        let p = tight.predict_one(&[1.0]);
        assert!(p.abs() < 1.5, "{p}");
    }

    #[test]
    fn interpolates_small_exact_datasets() {
        let mut ds = Dataset::new(["x"]);
        for (x, y) in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.0, 5.0)] {
            ds.push(vec![x], y);
        }
        let cfg = LsSvmConfig {
            gamma: 1e6,
            sigma: Some(0.5),
            ..Default::default()
        };
        let m = LsSvm::fit(&ds, &cfg, &mut SimRng::new(8));
        for (x, y) in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.0, 5.0)] {
            let p = m.predict_one(&[x]);
            assert!((p - y).abs() < 0.05, "f({x}) = {p}, want {y}");
        }
    }
}
