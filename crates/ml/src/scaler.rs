//! Z-score standardisation.
//!
//! The gradient- and regularisation-based trainers (Lasso, SVR, LS-SVM) are
//! scale-sensitive, and the monitored features span five orders of magnitude
//! (MiB vs. utilisation fractions), so each model standardises internally
//! with a [`StandardScaler`] fitted on its training split.

use serde::{Deserialize, Serialize};

/// Per-column mean/std scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-column statistics on `rows`. Constant columns get unit
    /// scale so transformation stays well-defined.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler on empty data");
        let width = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; width];
        for row in rows {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; width];
        for row in rows {
            for ((s, v), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *s += d * d;
            }
        }
        let stds = vars
            .iter()
            .map(|v| {
                let sd = (v / n).sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Number of columns the scaler was fitted on.
    pub fn width(&self) -> usize {
        self.means.len()
    }

    /// Standardises one row into a fresh vector.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.width(), "row width mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardises many rows.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations (1.0 for constant columns).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Scalar target scaler (mean/std of y), used by models that standardise the
/// target during training and un-standardise predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetScaler {
    mean: f64,
    std: f64,
}

impl TargetScaler {
    /// Fits on a target vector.
    pub fn fit(y: &[f64]) -> Self {
        assert!(!y.is_empty(), "cannot fit target scaler on empty data");
        let n = y.len() as f64;
        let mean = y.iter().sum::<f64>() / n;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        TargetScaler {
            mean,
            std: if std > 1e-12 { std } else { 1.0 },
        }
    }

    /// Standardises a target value.
    pub fn transform(&self, y: f64) -> f64 {
        (y - self.mean) / self.std
    }

    /// Un-standardises a prediction.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_zero_mean_unit_var() {
        let rows = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let sc = StandardScaler::fit(&rows);
        let t = sc.transform(&rows);
        for col in 0..2 {
            let mean: f64 = t.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[col] * r[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12, "col {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-12, "col {col} var {var}");
        }
    }

    #[test]
    fn constant_column_gets_unit_scale() {
        let rows = vec![vec![7.0], vec![7.0], vec![7.0]];
        let sc = StandardScaler::fit(&rows);
        assert_eq!(sc.stds(), &[1.0]);
        assert_eq!(sc.transform_row(&[7.0]), vec![0.0]);
    }

    #[test]
    fn target_scaler_round_trip() {
        let y = [10.0, 20.0, 30.0, 40.0];
        let ts = TargetScaler::fit(&y);
        for v in y {
            assert!((ts.inverse(ts.transform(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_target_round_trips() {
        let ts = TargetScaler::fit(&[5.0, 5.0]);
        assert_eq!(ts.inverse(ts.transform(5.0)), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        let _ = StandardScaler::fit(&[]);
    }
}
