//! Lasso: L1-regularised linear regression by cyclic coordinate descent.
//!
//! F2PM uses Lasso twice (paper Sec. III): to **select the most relevant
//! system features** — "this selection allows to reduce the amount of
//! information to be managed when the system is operational" — and as a
//! predictor in its own right. Coordinate descent with soft thresholding is
//! the standard solver (Friedman et al.); on standardised columns each
//! update is a closed-form shrinkage.

use crate::dataset::Dataset;
use crate::linalg::dot;
use crate::scaler::StandardScaler;
use serde::{Deserialize, Serialize};

/// Convergence tolerance on the max coordinate change (standardised scale).
const TOL: f64 = 1e-7;
/// Hard cap on coordinate-descent sweeps.
const MAX_SWEEPS: usize = 10_000;

/// A trained Lasso model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LassoRegression {
    /// Weights in the original feature space.
    weights: Vec<f64>,
    intercept: f64,
    /// Weights on the standardised scale (used for feature selection —
    /// comparable across features).
    std_weights: Vec<f64>,
    alpha: f64,
    sweeps: usize,
}

impl LassoRegression {
    /// Fits with L1 strength `alpha` (standardised scale).
    pub fn fit(ds: &Dataset, alpha: f64) -> Self {
        assert!(!ds.is_empty(), "cannot fit on empty dataset");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let n = ds.len();
        let p = ds.width();
        let scaler = StandardScaler::fit(ds.rows());
        let xs = scaler.transform(ds.rows());
        let y_mean = ds.target_mean();
        let yc: Vec<f64> = ds.targets().iter().map(|y| y - y_mean).collect();

        // Column-major copy: coordinate descent walks columns.
        let mut cols = vec![vec![0.0; n]; p];
        for (i, row) in xs.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                cols[j][i] = *v;
            }
        }
        // Column squared norms (≈ n after standardisation, but constant
        // columns map to all-zero and need the exact value).
        let col_sq: Vec<f64> = cols.iter().map(|c| dot(c, c)).collect();

        let mut w = vec![0.0; p];
        let mut residual = yc.clone(); // residual = y - Xw
        let mut sweeps = 0;
        for sweep in 0..MAX_SWEEPS {
            sweeps = sweep + 1;
            let mut max_delta: f64 = 0.0;
            for j in 0..p {
                if col_sq[j] == 0.0 {
                    continue;
                }
                let col = &cols[j];
                // rho = x_j · (residual + w_j x_j)
                let rho = dot(col, &residual) + w[j] * col_sq[j];
                let new_w = soft_threshold(rho, alpha * n as f64) / col_sq[j];
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (r, x) in residual.iter_mut().zip(col) {
                        *r -= delta * x;
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < TOL {
                break;
            }
        }

        let weights: Vec<f64> = w.iter().zip(scaler.stds()).map(|(w, s)| w / s).collect();
        let intercept = y_mean - dot(&weights, scaler.means());
        LassoRegression {
            weights,
            intercept,
            std_weights: w,
            alpha,
            sweeps,
        }
    }

    /// A reasonable default regularisation strength: 1 % of the smallest
    /// alpha that zeroes every coefficient (`alpha_max = max_j |x_jᵀy| / n`).
    pub fn default_alpha(ds: &Dataset) -> f64 {
        Self::alpha_max(ds) * 0.01
    }

    /// The smallest alpha at which the Lasso solution is identically zero.
    pub fn alpha_max(ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let scaler = StandardScaler::fit(ds.rows());
        let xs = scaler.transform(ds.rows());
        let y_mean = ds.target_mean();
        let n = ds.len() as f64;
        let mut best: f64 = 0.0;
        for j in 0..ds.width() {
            let corr: f64 = xs
                .iter()
                .zip(ds.targets())
                .map(|(row, y)| row[j] * (y - y_mean))
                .sum();
            best = best.max(corr.abs() / n);
        }
        best
    }

    /// Weights in original feature units.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weights on the standardised scale (magnitude-comparable across
    /// features).
    pub fn std_weights(&self) -> &[f64] {
        &self.std_weights
    }

    /// Intercept in target units.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// L1 strength used at fit time.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Coordinate-descent sweeps performed.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Indices of features whose standardised weight magnitude exceeds
    /// `threshold` — the Lasso feature-selection output F2PM feeds to the
    /// runtime monitors.
    pub fn selected_features(&self, threshold: f64) -> Vec<usize> {
        self.std_weights
            .iter()
            .enumerate()
            .filter(|(_, w)| w.abs() > threshold)
            .map(|(j, _)| j)
            .collect()
    }

    /// Predicts one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.intercept
    }
}

impl crate::model::Regressor for LassoRegression {
    fn predict_one(&self, x: &[f64]) -> f64 {
        LassoRegression::predict_one(self, x)
    }
    fn name(&self) -> &'static str {
        "lasso"
    }
}

/// Soft-thresholding operator `S(z, g) = sign(z)·max(|z| − g, 0)`.
fn soft_threshold(z: f64, gamma: f64) -> f64 {
    if z > gamma {
        z - gamma
    } else if z < -gamma {
        z + gamma
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearRegression;
    use acm_sim::rng::SimRng;

    /// y depends on features 0 and 2 only; 1 and 3 are noise.
    fn sparse_ds(seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["signal_a", "noise_a", "signal_b", "noise_b"]);
        for _ in 0..400 {
            let s1 = rng.uniform(-1.0, 1.0);
            let n1 = rng.uniform(-1.0, 1.0);
            let s2 = rng.uniform(-1.0, 1.0);
            let n2 = rng.uniform(-1.0, 1.0);
            let y = 4.0 * s1 - 6.0 * s2 + rng.normal(0.0, 0.1);
            ds.push(vec![s1, n1, s2, n2], y);
        }
        ds
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.0, 2.0), 0.0);
        assert_eq!(soft_threshold(-1.0, 2.0), 0.0);
    }

    #[test]
    fn selects_the_true_support() {
        let ds = sparse_ds(1);
        let m = LassoRegression::fit(&ds, 0.05);
        let sel = m.selected_features(0.01);
        assert_eq!(sel, vec![0, 2], "std weights {:?}", m.std_weights());
    }

    #[test]
    fn zero_alpha_matches_ols() {
        let ds = sparse_ds(2);
        let lasso = LassoRegression::fit(&ds, 0.0);
        let ols = LinearRegression::fit(&ds);
        for (l, o) in lasso.weights().iter().zip(ols.weights()) {
            assert!((l - o).abs() < 1e-4, "{l} vs {o}");
        }
    }

    #[test]
    fn alpha_max_zeroes_everything() {
        let ds = sparse_ds(3);
        let amax = LassoRegression::alpha_max(&ds);
        let m = LassoRegression::fit(&ds, amax * 1.001);
        assert!(
            m.std_weights().iter().all(|w| w.abs() < 1e-9),
            "{:?}",
            m.std_weights()
        );
        // Predicts the target mean everywhere.
        let p = m.predict_one(ds.row(0));
        assert!((p - ds.target_mean()).abs() < 1e-6);
    }

    #[test]
    fn stronger_alpha_is_sparser() {
        let ds = sparse_ds(4);
        let weak = LassoRegression::fit(&ds, 0.001);
        let strong = LassoRegression::fit(&ds, 1.0);
        let nz = |m: &LassoRegression| m.std_weights().iter().filter(|w| w.abs() > 1e-9).count();
        assert!(nz(&strong) <= nz(&weak));
        assert!(nz(&strong) <= 2);
    }

    #[test]
    fn prediction_quality_on_sparse_problem() {
        let ds = sparse_ds(5);
        let m = LassoRegression::fit(&ds, LassoRegression::default_alpha(&ds));
        // y(1, *, -1, *) = 4 + 6 = 10.
        let p = m.predict_one(&[1.0, 0.0, -1.0, 0.0]);
        assert!((p - 10.0).abs() < 0.5, "{p}");
    }

    #[test]
    fn converges_quickly_on_orthogonal_design() {
        let ds = sparse_ds(6);
        let m = LassoRegression::fit(&ds, 0.01);
        assert!(m.sweeps() < 100, "took {} sweeps", m.sweeps());
    }

    #[test]
    fn constant_feature_gets_zero_weight() {
        let mut ds = Dataset::new(["x", "const"]);
        let mut rng = SimRng::new(7);
        for _ in 0..100 {
            let x = rng.uniform(0.0, 1.0);
            ds.push(vec![x, 3.0], 2.0 * x);
        }
        let m = LassoRegression::fit(&ds, 0.001);
        assert_eq!(m.std_weights()[1], 0.0);
        assert!((m.predict_one(&[0.5, 3.0]) - 1.0).abs() < 0.05);
    }
}
