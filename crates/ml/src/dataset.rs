//! Feature database.
//!
//! The F2PM feature-monitor agent "builds a database of system features, for
//! later usage by the ML algorithms" (paper Sec. III). [`Dataset`] is that
//! database: a feature matrix, an RTTF target vector, and the feature names
//! (so Lasso selection can be reported by name).

use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A supervised regression dataset: rows of features with an RTTF target.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature names.
    pub fn new<I, S>(feature_names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Dataset {
            feature_names: feature_names.into_iter().map(Into::into).collect(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Appends one labelled observation. Panics on width mismatch or
    /// non-finite values — a corrupt training row would silently poison
    /// every downstream model.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "feature width mismatch"
        );
        assert!(
            features.iter().all(|v| v.is_finite()) && target.is_finite(),
            "non-finite observation"
        );
        self.x.push(features);
        self.y.push(target);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no observations.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features.
    pub fn width(&self) -> usize {
        self.feature_names.len()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Targets.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// One feature row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i]
    }

    /// Target of row `i`.
    pub fn target(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// Mean of the target vector (0 when empty).
    pub fn target_mean(&self) -> f64 {
        if self.y.is_empty() {
            0.0
        } else {
            self.y.iter().sum::<f64>() / self.y.len() as f64
        }
    }

    /// Returns a dataset containing only the rows at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Projects the dataset onto the feature columns at `keep` (in order).
    pub fn project(&self, keep: &[usize]) -> Dataset {
        for &j in keep {
            assert!(j < self.width(), "feature index {j} out of range");
        }
        Dataset {
            feature_names: keep
                .iter()
                .map(|&j| self.feature_names[j].clone())
                .collect(),
            x: self
                .x
                .iter()
                .map(|row| keep.iter().map(|&j| row[j]).collect())
                .collect(),
            y: self.y.clone(),
        }
    }

    /// Deterministic shuffled split into `(train, test)` with the given
    /// train fraction.
    pub fn split(&self, train_frac: f64, rng: &mut SimRng) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac), "bad train fraction");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let cut = (self.len() as f64 * train_frac).round() as usize;
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Deterministic k-fold partition: returns `k` (train, validation)
    /// pairs covering every row exactly once as validation.
    pub fn k_folds(&self, k: usize, rng: &mut SimRng) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "need at least two folds");
        assert!(self.len() >= k, "fewer rows than folds");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let val: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k == f)
                .map(|(_, &v)| v)
                .collect();
            let train: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k != f)
                .map(|(_, &v)| v)
                .collect();
            folds.push((self.subset(&train), self.subset(&val)));
        }
        folds
    }

    /// Merges another dataset with identical feature names into this one.
    pub fn extend(&mut self, other: &Dataset) {
        assert_eq!(
            self.feature_names, other.feature_names,
            "incompatible feature spaces"
        );
        self.x.extend(other.x.iter().cloned());
        self.y.extend_from_slice(&other.y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(["a", "b"]);
        for i in 0..10 {
            ds.push(vec![i as f64, 2.0 * i as f64], 10.0 * i as f64);
        }
        ds
    }

    #[test]
    fn push_and_read_back() {
        let ds = toy();
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.width(), 2);
        assert_eq!(ds.row(3), &[3.0, 6.0]);
        assert_eq!(ds.target(3), 30.0);
        assert_eq!(ds.feature_names(), &["a".to_string(), "b".to_string()]);
        assert!((ds.target_mean() - 45.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_wrong_width_panics() {
        let mut ds = Dataset::new(["a", "b"]);
        ds.push(vec![1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn push_nan_panics() {
        let mut ds = Dataset::new(["a"]);
        ds.push(vec![f64::NAN], 0.0);
    }

    #[test]
    fn subset_selects_rows() {
        let ds = toy();
        let sub = ds.subset(&[0, 5, 9]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.target(1), 50.0);
    }

    #[test]
    fn project_selects_columns() {
        let ds = toy();
        let p = ds.project(&[1]);
        assert_eq!(p.width(), 1);
        assert_eq!(p.feature_names(), &["b".to_string()]);
        assert_eq!(p.row(4), &[8.0]);
        assert_eq!(p.targets(), ds.targets());
    }

    #[test]
    fn split_partitions_everything() {
        let ds = toy();
        let mut rng = SimRng::new(1);
        let (train, test) = ds.split(0.7, &mut rng);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        let mut all: Vec<f64> = train
            .targets()
            .iter()
            .chain(test.targets())
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expect: Vec<f64> = ds.targets().to_vec();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, expect);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = toy();
        let (a, _) = ds.split(0.5, &mut SimRng::new(9));
        let (b, _) = ds.split(0.5, &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn k_folds_cover_all_rows_once() {
        let ds = toy();
        let mut rng = SimRng::new(2);
        let folds = ds.k_folds(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut val_targets: Vec<f64> = folds
            .iter()
            .flat_map(|(_, v)| v.targets().to_vec())
            .collect();
        val_targets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expect = ds.targets().to_vec();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(val_targets, expect);
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), ds.len());
        }
    }

    #[test]
    fn extend_concatenates() {
        let mut a = toy();
        let b = toy();
        a.extend(&b);
        assert_eq!(a.len(), 20);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn extend_incompatible_panics() {
        let mut a = toy();
        let b = Dataset::new(["x", "y"]);
        a.extend(&b);
    }
}
