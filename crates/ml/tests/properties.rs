//! Property-based tests for the F2PM ML toolchain.

use acm_ml::dataset::Dataset;
use acm_ml::linear::LinearRegression;
use acm_ml::metrics::RegressionMetrics;
use acm_ml::scaler::{StandardScaler, TargetScaler};
use acm_sim::rng::SimRng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ols_recovers_random_linear_targets_exactly(
        seed in 0u64..500,
        w0 in -10.0f64..10.0,
        w1 in -10.0f64..10.0,
        b in -10.0f64..10.0,
    ) {
        let mut rng = SimRng::new(seed);
        let mut ds = Dataset::new(["a", "b"]);
        for _ in 0..60 {
            let a = rng.uniform(-1.0, 1.0);
            let c = rng.uniform(-1.0, 1.0);
            ds.push(vec![a, c], w0 * a + w1 * c + b);
        }
        let m = LinearRegression::fit(&ds);
        let probe = [0.3, -0.7];
        let want = w0 * probe[0] + w1 * probe[1] + b;
        prop_assert!(
            (m.predict_one(&probe) - want).abs() < 1e-4,
            "got {}, want {want}",
            m.predict_one(&probe)
        );
    }

    #[test]
    fn scaler_output_has_zero_mean_unit_variance(
        seed in 0u64..500,
        scale in 0.1f64..1e5,
        offset in -1e5f64..1e5,
    ) {
        let mut rng = SimRng::new(seed);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![offset + scale * rng.f64()])
            .collect();
        let sc = StandardScaler::fit(&rows);
        let t = sc.transform(&rows);
        let mean: f64 = t.iter().map(|r| r[0]).sum::<f64>() / t.len() as f64;
        let var: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / t.len() as f64 - mean * mean;
        prop_assert!(mean.abs() < 1e-6, "mean {mean}");
        // Degenerate all-equal samples keep unit scale; otherwise variance ≈ 1.
        if var > 1e-12 {
            prop_assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn target_scaler_round_trips(
        seed in 0u64..500,
        y0 in -1e6f64..1e6,
        spread in 0.0f64..1e6,
    ) {
        let mut rng = SimRng::new(seed);
        let ys: Vec<f64> = (0..20).map(|_| y0 + spread * rng.f64()).collect();
        let ts = TargetScaler::fit(&ys);
        for &y in &ys {
            let rt = ts.inverse(ts.transform(y));
            prop_assert!((rt - y).abs() < 1e-6 * (1.0 + y.abs()), "{rt} vs {y}");
        }
    }

    #[test]
    fn rmse_dominates_mae_and_r2_bounded(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100),
    ) {
        let truth: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let pred: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let m = RegressionMetrics::compute(&truth, &pred);
        prop_assert!(m.rmse + 1e-12 >= m.mae, "rmse {} < mae {}", m.rmse, m.mae);
        prop_assert!(m.r2 <= 1.0 + 1e-12);
        prop_assert!(m.mae >= 0.0 && m.rmse >= 0.0 && m.mape >= 0.0);
    }

    #[test]
    fn dataset_split_partitions_rows(
        n in 4usize..200,
        frac in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let mut ds = Dataset::new(["x"]);
        for i in 0..n {
            ds.push(vec![i as f64], i as f64);
        }
        let (train, test) = ds.split(frac, &mut SimRng::new(seed));
        prop_assert_eq!(train.len() + test.len(), n);
        let mut all: Vec<f64> = train.targets().iter().chain(test.targets()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(all, expect);
    }
}
