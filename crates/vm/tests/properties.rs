//! Property-based tests for the VM substrate.

use acm_sim::rng::SimRng;
use acm_sim::time::{Duration, SimTime};
use acm_vm::{AnomalyConfig, AnomalyState, FailureSpec, Vm, VmFlavor, VmId, VmState};
use proptest::prelude::*;

fn flavor_strategy() -> impl Strategy<Value = VmFlavor> {
    (0usize..3).prop_map(|i| match i {
        0 => VmFlavor::m3_medium(),
        1 => VmFlavor::m3_small(),
        _ => VmFlavor::private_munich(),
    })
}

proptest! {
    #[test]
    fn anomaly_accumulation_is_monotone_in_requests(
        seed in 0u64..1_000,
        n1 in 0u64..5_000,
        extra in 0u64..5_000,
    ) {
        let cfg = AnomalyConfig::default();
        let mut st = AnomalyState::fresh();
        let mut rng = SimRng::new(seed);
        st.apply_requests(&cfg, n1, &mut rng);
        let leaked_before = st.leaked_mb;
        let threads_before = st.stuck_threads;
        st.apply_requests(&cfg, extra, &mut rng);
        prop_assert!(st.leaked_mb >= leaked_before);
        prop_assert!(st.stuck_threads >= threads_before);
        prop_assert_eq!(st.requests_since_refresh, n1 + extra);
    }

    #[test]
    fn rttf_is_antitone_in_load(
        flavor in flavor_strategy(),
        lambda in 0.5f64..20.0,
        extra in 0.1f64..20.0,
    ) {
        let spec = FailureSpec::default();
        let cfg = AnomalyConfig::default();
        let fresh = AnomalyState::fresh();
        let (t_low, _) = spec.true_rttf(&flavor, &cfg, &fresh, lambda);
        let (t_high, _) = spec.true_rttf(&flavor, &cfg, &fresh, lambda + extra);
        // Higher load can never extend the remaining lifetime.
        prop_assert!(t_high <= t_low * 1.000001, "{t_high} > {t_low}");
    }

    #[test]
    fn zero_rttf_iff_failure_predicate_holds(
        flavor in flavor_strategy(),
        leaked in 0.0f64..8_000.0,
        threads in 0u32..1_200,
        lambda in 1.0f64..30.0,
    ) {
        let spec = FailureSpec::default();
        let cfg = AnomalyConfig::default();
        let st = AnomalyState {
            leaked_mb: leaked,
            stuck_threads: threads,
            leak_events: 0,
            requests_since_refresh: 0,
        };
        let (rttf, cause) = spec.true_rttf(&flavor, &cfg, &st, lambda);
        let failed_now = spec.check(&flavor, &cfg, &st, lambda);
        prop_assert_eq!(rttf == 0.0, failed_now.is_some());
        if rttf == 0.0 {
            prop_assert_eq!(cause, failed_now);
        }
    }

    #[test]
    fn features_are_always_finite(
        flavor in flavor_strategy(),
        seed in 0u64..500,
        eras in 0usize..12,
        lambda in 0.0f64..40.0,
    ) {
        let mut vm = Vm::new(
            VmId(0),
            flavor,
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(seed),
        );
        let era = Duration::from_secs(30);
        let mut now = SimTime::ZERO;
        for _ in 0..eras {
            vm.process_era(now, era, lambda);
            now += era;
        }
        let f = vm.features(now, lambda);
        prop_assert!(f.is_finite(), "{f:?}");
    }

    #[test]
    fn era_outcome_counts_are_consistent(
        seed in 0u64..500,
        lambda in 0.1f64..30.0,
    ) {
        let mut vm = Vm::new(
            VmId(0),
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(seed),
        );
        let out = vm.process_era(SimTime::ZERO, Duration::from_secs(30), lambda);
        prop_assert!(out.completed <= out.offered);
        prop_assert!(out.active_s >= 0.0 && out.active_s <= 30.0);
        prop_assert!(out.mean_response_s >= 0.0 && out.mean_response_s <= 30.0 + 1e-9);
        prop_assert_eq!(vm.total_completed(), out.completed);
    }

    #[test]
    fn rejuvenation_is_always_a_full_reset(
        flavor in flavor_strategy(),
        seed in 0u64..500,
        eras in 1usize..10,
    ) {
        let mut vm = Vm::new(
            VmId(0),
            flavor,
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(seed),
        );
        let era = Duration::from_secs(30);
        let mut now = SimTime::ZERO;
        for _ in 0..eras {
            vm.process_era(now, era, 15.0);
            now += era;
            if !vm.is_active() {
                break;
            }
        }
        vm.start_rejuvenation(now, Duration::from_secs(60));
        now += Duration::from_secs(60);
        prop_assert!(vm.poll_rejuvenation(now));
        prop_assert_eq!(vm.anomaly(), &AnomalyState::fresh());
        prop_assert!(vm.is_standby());
    }
}
