//! The F2PM system-feature vector.
//!
//! F2PM's monitoring client "measures a large set of system features, such
//! as memory usage, CPU time, and swap space usage" (paper Sec. III) and
//! ships them to a feature-monitor agent that builds the training database.
//! We expose the twelve features a real agent could observe on our VM model
//! — note it observes *symptoms* (resident set, swap, threads, response
//! time), never the hidden anomaly bookkeeping, so the ML problem is
//! genuinely indirect just as in the paper. Lasso regularisation later
//! selects the informative subset.

use serde::{Deserialize, Serialize};

/// Number of features in the vector.
pub const FEATURE_COUNT: usize = 12;

/// Feature names, index-aligned with [`FeatureVec::values`].
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "resident_mb",     // resident set size, MiB
    "swap_used_mb",    // swap in use, MiB
    "mem_util",        // resident / (RAM + swap)
    "threads",         // OS thread count
    "thread_util",     // threads / max_threads
    "cpu_util",        // offered load / effective capacity
    "response_time_s", // mean response time over the last era
    "request_rate",    // arrival rate, req/s
    "age_s",           // seconds since last rejuvenation
    "requests_total",  // requests served since last rejuvenation
    "io_slowdown",     // swap-induced demand multiplier (iowait proxy)
    "free_ram_mb",     // RAM not yet resident
];

/// A single observation of the monitored system features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVec {
    /// Feature values, index-aligned with [`FEATURE_NAMES`].
    pub values: [f64; FEATURE_COUNT],
}

impl FeatureVec {
    /// Builds a vector from raw values.
    pub fn new(values: [f64; FEATURE_COUNT]) -> Self {
        FeatureVec { values }
    }

    /// Value of the named feature, if the name is known.
    pub fn get(&self, name: &str) -> Option<f64> {
        FEATURE_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| self.values[i])
    }

    /// All values as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

impl std::ops::Index<usize> for FeatureVec {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_count_agree() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
        // Names are unique.
        let mut names = FEATURE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FEATURE_COUNT);
    }

    #[test]
    fn get_by_name() {
        let mut values = [0.0; FEATURE_COUNT];
        values[0] = 1234.0;
        values[6] = 0.25;
        let fv = FeatureVec::new(values);
        assert_eq!(fv.get("resident_mb"), Some(1234.0));
        assert_eq!(fv.get("response_time_s"), Some(0.25));
        assert_eq!(fv.get("nonexistent"), None);
        assert_eq!(fv[0], 1234.0);
    }

    #[test]
    fn finiteness_check() {
        let fv = FeatureVec::new([0.0; FEATURE_COUNT]);
        assert!(fv.is_finite());
        let mut bad = fv;
        bad.values[3] = f64::NAN;
        assert!(!bad.is_finite());
    }
}
