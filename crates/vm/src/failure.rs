//! Failure points and ground-truth remaining time to failure.
//!
//! F2PM lets the user define the *failure point* of a VM as a conjunction of
//! constraints — not necessarily a crash; an SLA violation counts (paper
//! Sec. III). We implement the three predicates the anomaly model can reach:
//!
//! * **Out of memory** — resident set exceeds RAM + swap.
//! * **Thread exhaustion** — thread table full.
//! * **SLA violation** — the steady-state mean response time at the VM's
//!   current arrival rate exceeds the SLA bound (equivalently, the degraded
//!   service rate falls below `λ + 1/R_max`).
//!
//! [`FailureSpec::true_rttf`] computes the *ground-truth* remaining time to
//! failure assuming the current arrival rate persists. Anomaly accumulation
//! is linear in expectation, so the OOM and thread crossings are closed-form
//! and the SLA crossing (monotone in time) is found by bisection. This
//! ground truth is what labels the F2PM training set and what the REP-Tree
//! model is later judged against.

use crate::anomaly::{AnomalyConfig, AnomalyState};
use crate::flavor::VmFlavor;
use crate::service;
use serde::{Deserialize, Serialize};

/// Which failure predicate fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// Resident set exceeded RAM + swap.
    OutOfMemory,
    /// Thread table exhausted.
    ThreadExhaustion,
    /// Mean response time exceeded the SLA bound.
    SlaViolation,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureCause::OutOfMemory => "out-of-memory",
            FailureCause::ThreadExhaustion => "thread-exhaustion",
            FailureCause::SlaViolation => "sla-violation",
        };
        f.write_str(s)
    }
}

/// Failure-point definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// SLA bound on the mean response time, seconds. The paper keeps client
    /// response times under a 1-second threshold (Sec. VI-B).
    pub sla_response_s: f64,
    /// Whether the SLA predicate participates in the failure point (the OOM
    /// and thread predicates always do).
    pub enforce_sla: bool,
}

impl Default for FailureSpec {
    fn default() -> Self {
        FailureSpec {
            sla_response_s: 1.0,
            enforce_sla: true,
        }
    }
}

/// Continuous-state effective service rate: like
/// [`service::effective_service_rate`] but with fractional thread counts so
/// the RTTF solver can treat accumulation as a fluid.
fn effective_rate_fluid(
    flavor: &VmFlavor,
    cfg: &AnomalyConfig,
    leaked_mb: f64,
    stuck_threads: f64,
) -> f64 {
    let resident = flavor.baseline_resident_mb + leaked_mb + stuck_threads * cfg.thread_stack_mb;
    let swap_used = (resident - flavor.ram_mb).clamp(0.0, flavor.swap_mb);
    let slowdown = if flavor.swap_mb > 0.0 {
        1.0 + service::SWAP_PENALTY * swap_used / flavor.swap_mb
    } else {
        1.0
    };
    let compute = (flavor.compute_capacity() - stuck_threads * cfg.thread_cpu_burn).max(0.0);
    compute / (flavor.base_request_demand_s * slowdown)
}

impl FailureSpec {
    /// Evaluates the failure point on the current state at arrival rate
    /// `lambda` (req/s). Returns the first predicate that holds, checking
    /// hard resource exhaustion before the SLA.
    pub fn check(
        &self,
        flavor: &VmFlavor,
        cfg: &AnomalyConfig,
        st: &AnomalyState,
        lambda: f64,
    ) -> Option<FailureCause> {
        let resident = service::resident_mb(flavor, cfg, st);
        if resident >= flavor.ram_mb + flavor.swap_mb {
            return Some(FailureCause::OutOfMemory);
        }
        if flavor.baseline_threads + st.stuck_threads >= flavor.max_threads {
            return Some(FailureCause::ThreadExhaustion);
        }
        if self.enforce_sla && lambda > 0.0 {
            let mu = service::effective_service_rate(flavor, cfg, st);
            match service::mm1_response(mu, lambda) {
                Some(r) if r <= self.sla_response_s => {}
                _ => return Some(FailureCause::SlaViolation),
            }
        }
        None
    }

    /// Ground-truth remaining time to failure (seconds) assuming arrival
    /// rate `lambda` persists, together with the cause that will fire first.
    /// Returns `(f64::INFINITY, None)` when no predicate is ever reached
    /// (e.g. `lambda == 0` with no accumulated pressure).
    pub fn true_rttf(
        &self,
        flavor: &VmFlavor,
        cfg: &AnomalyConfig,
        st: &AnomalyState,
        lambda: f64,
    ) -> (f64, Option<FailureCause>) {
        if let Some(cause) = self.check(flavor, cfg, st, lambda) {
            return (0.0, Some(cause));
        }

        // Expected accumulation rates (fluid limit).
        let leak_mb_per_s = lambda * cfg.mean_leak_mb_per_request();
        let threads_per_s = lambda * cfg.mean_threads_per_request();
        let resident_mb_per_s = leak_mb_per_s + threads_per_s * cfg.thread_stack_mb;

        let resident0 = service::resident_mb(flavor, cfg, st);
        let threads0 = flavor.baseline_threads as f64 + st.stuck_threads as f64;

        let t_oom = if resident_mb_per_s > 0.0 {
            (flavor.ram_mb + flavor.swap_mb - resident0) / resident_mb_per_s
        } else {
            f64::INFINITY
        };
        let t_threads = if threads_per_s > 0.0 {
            (flavor.max_threads as f64 - threads0) / threads_per_s
        } else {
            f64::INFINITY
        };

        let t_sla = if self.enforce_sla && lambda > 0.0 {
            self.sla_crossing_time(flavor, cfg, st, lambda, t_oom.min(t_threads))
        } else {
            f64::INFINITY
        };

        let mut best = (f64::INFINITY, None);
        for (t, cause) in [
            (t_sla, FailureCause::SlaViolation),
            (t_oom, FailureCause::OutOfMemory),
            (t_threads, FailureCause::ThreadExhaustion),
        ] {
            if t < best.0 {
                best = (t, Some(cause));
            }
        }
        best
    }

    /// First time `t >= 0` at which the SLA predicate fires, i.e.
    /// `μ_eff(t) <= λ + 1/R_max`, found by bisection. `μ_eff` is
    /// non-increasing in `t`, so the crossing is unique if it exists within
    /// `horizon` (the earlier hard-failure time).
    fn sla_crossing_time(
        &self,
        flavor: &VmFlavor,
        cfg: &AnomalyConfig,
        st: &AnomalyState,
        lambda: f64,
        horizon: f64,
    ) -> f64 {
        let leak_mb_per_s = lambda * cfg.mean_leak_mb_per_request();
        let threads_per_s = lambda * cfg.mean_threads_per_request();
        let mu_needed = lambda + 1.0 / self.sla_response_s;

        let mu_at = |t: f64| {
            effective_rate_fluid(
                flavor,
                cfg,
                st.leaked_mb + leak_mb_per_s * t,
                st.stuck_threads as f64 + threads_per_s * t,
            )
        };

        // No accumulation => rate constant; the SLA either already fails
        // (handled by `check`) or never will.
        if leak_mb_per_s == 0.0 && threads_per_s == 0.0 {
            return f64::INFINITY;
        }

        let hi_cap = if horizon.is_finite() {
            horizon
        } else {
            // Generous upper bound: time to leak the entire address space.
            let rate = (leak_mb_per_s + threads_per_s * cfg.thread_stack_mb).max(1e-12);
            (flavor.ram_mb + flavor.swap_mb) / rate * 4.0
        };
        if mu_at(hi_cap) > mu_needed {
            return f64::INFINITY; // never crosses before the hard failure
        }
        let (mut lo, mut hi) = (0.0_f64, hi_cap);
        for _ in 0..128 {
            let mid = 0.5 * (lo + hi);
            if mu_at(mid) > mu_needed {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Mean time to failure of a *fresh* VM of this flavor at arrival rate
    /// `lambda` — the quantity the region-level RMTTF converges to.
    pub fn mttf_at_rate(&self, flavor: &VmFlavor, cfg: &AnomalyConfig, lambda: f64) -> f64 {
        self.true_rttf(flavor, cfg, &AnomalyState::fresh(), lambda)
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VmFlavor, AnomalyConfig, FailureSpec) {
        (
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
        )
    }

    #[test]
    fn fresh_vm_is_healthy() {
        let (f, cfg, spec) = setup();
        assert_eq!(spec.check(&f, &cfg, &AnomalyState::fresh(), 10.0), None);
    }

    #[test]
    fn oom_predicate_fires() {
        let (f, cfg, spec) = setup();
        let st = AnomalyState {
            leaked_mb: f.ram_mb + f.swap_mb,
            ..Default::default()
        };
        assert_eq!(
            spec.check(&f, &cfg, &st, 10.0),
            Some(FailureCause::OutOfMemory)
        );
    }

    #[test]
    fn thread_predicate_fires() {
        let (f, cfg, spec) = setup();
        let st = AnomalyState {
            stuck_threads: f.max_threads - f.baseline_threads,
            ..Default::default()
        };
        assert_eq!(
            spec.check(&f, &cfg, &st, 10.0),
            Some(FailureCause::ThreadExhaustion)
        );
    }

    #[test]
    fn sla_predicate_fires_under_saturation() {
        let (f, cfg, spec) = setup();
        // Fresh VM but arrival rate beyond μ: SLA predicate fires.
        let lambda = f.fresh_service_rate() + 1.0;
        assert_eq!(
            spec.check(&f, &cfg, &AnomalyState::fresh(), lambda),
            Some(FailureCause::SlaViolation)
        );
    }

    #[test]
    fn sla_predicate_respects_bound() {
        let (f, cfg, mut spec) = setup();
        // μ = 50; at λ = 49.5, R = 2 s > 1 s bound → violation.
        assert_eq!(
            spec.check(&f, &cfg, &AnomalyState::fresh(), 49.5),
            Some(FailureCause::SlaViolation)
        );
        // With SLA disabled nothing fires.
        spec.enforce_sla = false;
        assert_eq!(spec.check(&f, &cfg, &AnomalyState::fresh(), 49.5), None);
    }

    #[test]
    fn rttf_zero_when_already_failed() {
        let (f, cfg, spec) = setup();
        let st = AnomalyState {
            leaked_mb: f.ram_mb + f.swap_mb,
            ..Default::default()
        };
        let (t, cause) = spec.true_rttf(&f, &cfg, &st, 10.0);
        assert_eq!(t, 0.0);
        assert_eq!(cause, Some(FailureCause::OutOfMemory));
    }

    #[test]
    fn rttf_infinite_with_no_load() {
        let (f, cfg, spec) = setup();
        let (t, cause) = spec.true_rttf(&f, &cfg, &AnomalyState::fresh(), 0.0);
        assert_eq!(t, f64::INFINITY);
        assert_eq!(cause, None);
    }

    #[test]
    fn rttf_decreases_with_load() {
        let (f, cfg, spec) = setup();
        let fresh = AnomalyState::fresh();
        let (t5, _) = spec.true_rttf(&f, &cfg, &fresh, 5.0);
        let (t20, _) = spec.true_rttf(&f, &cfg, &fresh, 20.0);
        assert!(t5.is_finite() && t20.is_finite());
        assert!(t20 < t5, "higher load must shorten RTTF ({t20} !< {t5})");
        // Roughly inverse-proportional in the leak-dominated regime.
        let ratio = t5 / t20;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn rttf_decreases_as_damage_accumulates() {
        let (f, cfg, spec) = setup();
        let fresh = AnomalyState::fresh();
        let damaged = AnomalyState {
            leaked_mb: 1000.0,
            stuck_threads: 50,
            ..Default::default()
        };
        let (t_fresh, _) = spec.true_rttf(&f, &cfg, &fresh, 10.0);
        let (t_damaged, _) = spec.true_rttf(&f, &cfg, &damaged, 10.0);
        assert!(t_damaged < t_fresh);
    }

    #[test]
    fn sla_fires_before_oom_at_moderate_load() {
        // At a moderate arrival rate, swap-induced slowdown violates the SLA
        // well before the VM is fully out of memory.
        let (f, cfg, spec) = setup();
        let (_, cause) = spec.true_rttf(&f, &cfg, &AnomalyState::fresh(), 30.0);
        assert_eq!(cause, Some(FailureCause::SlaViolation));
    }

    #[test]
    fn rttf_consistent_with_forward_evolution() {
        // Evolve the fluid state forward by the predicted RTTF and verify the
        // failure point is indeed (just) reached.
        let (f, cfg, spec) = setup();
        let lambda = 12.0;
        let st = AnomalyState::fresh();
        let (t, cause) = spec.true_rttf(&f, &cfg, &st, lambda);
        assert!(t.is_finite());
        let evolved = AnomalyState {
            leaked_mb: st.leaked_mb + lambda * cfg.mean_leak_mb_per_request() * (t * 1.001),
            stuck_threads: st.stuck_threads
                + (lambda * cfg.mean_threads_per_request() * (t * 1.001)).round() as u32,
            ..Default::default()
        };
        assert_eq!(spec.check(&f, &cfg, &evolved, lambda), cause);
    }

    #[test]
    fn mttf_reflects_heterogeneity() {
        let cfg = AnomalyConfig::default();
        let spec = FailureSpec::default();
        let lambda = 8.0;
        let mttf_medium = spec.mttf_at_rate(&VmFlavor::m3_medium(), &cfg, lambda);
        let mttf_private = spec.mttf_at_rate(&VmFlavor::private_munich(), &cfg, lambda);
        // The memory-rich m3.medium survives much longer per VM.
        assert!(
            mttf_medium > 1.5 * mttf_private,
            "medium {mttf_medium} vs private {mttf_private}"
        );
    }

    #[test]
    fn disabled_sla_extends_rttf_to_hard_failure() {
        let (f, cfg, _) = setup();
        let spec_sla = FailureSpec::default();
        let spec_hard = FailureSpec {
            enforce_sla: false,
            ..Default::default()
        };
        let fresh = AnomalyState::fresh();
        let (t_sla, _) = spec_sla.true_rttf(&f, &cfg, &fresh, 15.0);
        let (t_hard, cause) = spec_hard.true_rttf(&f, &cfg, &fresh, 15.0);
        assert!(t_hard > t_sla);
        assert!(matches!(
            cause,
            Some(FailureCause::OutOfMemory) | Some(FailureCause::ThreadExhaustion)
        ));
    }
}
