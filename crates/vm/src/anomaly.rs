//! Software-anomaly injection and accumulation.
//!
//! The paper modified its TPC-W deployment so that, on each client request,
//! a VM independently generates a **memory leak with probability 0.10** and
//! an **unterminated thread with probability 0.05** (Sec. VI-A). Leaks and
//! stuck threads accumulate until the VM's failure point; rejuvenation
//! resets them.
//!
//! [`AnomalyConfig`] holds the injection parameters, [`AnomalyState`] the
//! accumulated damage. Both per-request sampling and aggregated per-era
//! (binomial) sampling are provided so the coarse control-loop grain sees
//! statistically identical accumulation to the fine per-request grain.

use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Probability that a request triggers a memory leak (paper: 10 %).
pub const DEFAULT_LEAK_PROB: f64 = 0.10;
/// Probability that a request leaves an unterminated thread (paper: 5 %).
pub const DEFAULT_THREAD_PROB: f64 = 0.05;

/// Injection parameters for software anomalies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Per-request probability of a memory leak.
    pub leak_prob: f64,
    /// Mean size of one leaked allocation, MiB.
    pub leak_size_mb: f64,
    /// Relative standard deviation of the leak size (log-normal spread).
    pub leak_size_cv: f64,
    /// Per-request probability of an unterminated thread.
    pub thread_prob: f64,
    /// CPU fraction of one reference core that each stuck thread burns
    /// (spin-waiting / busy polling).
    pub thread_cpu_burn: f64,
    /// Resident memory overhead of one stuck thread (stack + TLS), MiB.
    pub thread_stack_mb: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            leak_prob: DEFAULT_LEAK_PROB,
            leak_size_mb: 8.0,
            leak_size_cv: 0.35,
            thread_prob: DEFAULT_THREAD_PROB,
            thread_cpu_burn: 0.0005,
            thread_stack_mb: 0.5,
        }
    }
}

impl AnomalyConfig {
    /// A configuration that never injects anomalies (healthy baseline runs).
    pub fn none() -> Self {
        AnomalyConfig {
            leak_prob: 0.0,
            thread_prob: 0.0,
            ..AnomalyConfig::default()
        }
    }

    /// Expected leaked MiB per processed request.
    pub fn mean_leak_mb_per_request(&self) -> f64 {
        self.leak_prob * self.leak_size_mb
    }

    /// Expected stuck threads per processed request.
    pub fn mean_threads_per_request(&self) -> f64 {
        self.thread_prob
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("leak_prob", self.leak_prob),
            ("thread_prob", self.thread_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        if self.leak_size_mb < 0.0 || self.thread_stack_mb < 0.0 || self.thread_cpu_burn < 0.0 {
            return Err("anomaly magnitudes must be non-negative".into());
        }
        if self.leak_size_cv < 0.0 {
            return Err("leak_size_cv must be non-negative".into());
        }
        Ok(())
    }
}

/// Accumulated anomaly damage on one VM since its last rejuvenation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnomalyState {
    /// Total leaked resident memory, MiB.
    pub leaked_mb: f64,
    /// Number of unterminated threads alive.
    pub stuck_threads: u32,
    /// Count of individual leak events (telemetry).
    pub leak_events: u64,
    /// Requests processed since last rejuvenation (telemetry / age proxy).
    pub requests_since_refresh: u64,
}

impl AnomalyState {
    /// A fresh (just-rejuvenated) state.
    pub fn fresh() -> Self {
        AnomalyState::default()
    }

    /// Clears all accumulated damage (software rejuvenation).
    pub fn reset(&mut self) {
        *self = AnomalyState::default();
    }

    /// Total extra resident memory attributable to anomalies, MiB
    /// (leaked allocations plus stuck-thread stacks).
    pub fn anomaly_resident_mb(&self, cfg: &AnomalyConfig) -> f64 {
        self.leaked_mb + self.stuck_threads as f64 * cfg.thread_stack_mb
    }

    /// CPU (reference-core units) burned by stuck threads.
    pub fn cpu_burn(&self, cfg: &AnomalyConfig) -> f64 {
        self.stuck_threads as f64 * cfg.thread_cpu_burn
    }

    /// Applies the anomaly outcome of a single request. Returns `true` if
    /// any anomaly was injected.
    pub fn apply_request(&mut self, cfg: &AnomalyConfig, rng: &mut SimRng) -> bool {
        self.requests_since_refresh += 1;
        let mut injected = false;
        if rng.bernoulli(cfg.leak_prob) {
            self.leaked_mb += sample_leak_size(cfg, rng);
            self.leak_events += 1;
            injected = true;
        }
        if rng.bernoulli(cfg.thread_prob) {
            self.stuck_threads += 1;
            injected = true;
        }
        injected
    }

    /// Applies the aggregate anomaly outcome of `n` requests in one step.
    ///
    /// Leak and thread counts are drawn from `Binomial(n, p)`; the total
    /// leaked size uses the exact per-event log-normal for small counts and
    /// a matched normal approximation for large ones, so the era grain is
    /// statistically faithful to the per-request grain.
    pub fn apply_requests(&mut self, cfg: &AnomalyConfig, n: u64, rng: &mut SimRng) {
        self.requests_since_refresh += n;
        let leaks = sample_binomial(n, cfg.leak_prob, rng);
        if leaks > 0 {
            self.leak_events += leaks;
            if leaks <= 32 {
                for _ in 0..leaks {
                    self.leaked_mb += sample_leak_size(cfg, rng);
                }
            } else {
                // Sum of `leaks` i.i.d. log-normals ≈ normal by CLT.
                let mean = leaks as f64 * cfg.leak_size_mb;
                let sd = (leaks as f64).sqrt() * cfg.leak_size_mb * cfg.leak_size_cv;
                self.leaked_mb += rng.normal(mean, sd).max(0.0);
            }
        }
        let threads = sample_binomial(n, cfg.thread_prob, rng);
        self.stuck_threads = self
            .stuck_threads
            .saturating_add(threads.min(u32::MAX as u64) as u32);
    }
}

/// One leak event's size: log-normal with mean `leak_size_mb` and coefficient
/// of variation `leak_size_cv` (degenerate at the mean when cv = 0).
fn sample_leak_size(cfg: &AnomalyConfig, rng: &mut SimRng) -> f64 {
    if cfg.leak_size_cv == 0.0 || cfg.leak_size_mb == 0.0 {
        return cfg.leak_size_mb;
    }
    // For a log-normal, mean = exp(mu + sigma^2/2) and cv^2 = exp(sigma^2)-1.
    let sigma2 = (1.0 + cfg.leak_size_cv * cfg.leak_size_cv).ln();
    let mu = cfg.leak_size_mb.ln() - sigma2 / 2.0;
    rng.log_normal(mu, sigma2.sqrt())
}

/// Draws from Binomial(n, p). Exact Bernoulli loop for small n, normal
/// approximation (rounded, clamped) when n·p·(1-p) is large enough for the
/// CLT to hold.
pub fn sample_binomial(n: u64, p: f64, rng: &mut SimRng) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let npq = n as f64 * p * (1.0 - p);
    if n <= 64 || npq < 25.0 {
        (0..n).filter(|_| rng.bernoulli(p)).count() as u64
    } else {
        let mean = n as f64 * p;
        let draw = rng.normal(mean, npq.sqrt()).round();
        draw.clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_probabilities() {
        let cfg = AnomalyConfig::default();
        assert_eq!(cfg.leak_prob, 0.10);
        assert_eq!(cfg.thread_prob, 0.05);
        cfg.validate().unwrap();
    }

    #[test]
    fn none_config_injects_nothing() {
        let cfg = AnomalyConfig::none();
        let mut st = AnomalyState::fresh();
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert!(!st.apply_request(&cfg, &mut rng));
        }
        assert_eq!(st.leaked_mb, 0.0);
        assert_eq!(st.stuck_threads, 0);
        assert_eq!(st.requests_since_refresh, 1000);
    }

    #[test]
    fn per_request_rates_match_probabilities() {
        let cfg = AnomalyConfig::default();
        let mut st = AnomalyState::fresh();
        let mut rng = SimRng::new(2);
        let n = 100_000;
        for _ in 0..n {
            st.apply_request(&cfg, &mut rng);
        }
        let leak_rate = st.leak_events as f64 / n as f64;
        let thread_rate = st.stuck_threads as f64 / n as f64;
        assert!((leak_rate - 0.10).abs() < 0.01, "leak rate {leak_rate}");
        assert!(
            (thread_rate - 0.05).abs() < 0.01,
            "thread rate {thread_rate}"
        );
        // Mean leaked memory per request ≈ leak_prob × leak_size = 0.8 MiB.
        let per_req = st.leaked_mb / n as f64;
        assert!((per_req - 0.80).abs() < 0.08, "leak MiB/request {per_req}");
    }

    #[test]
    fn era_grain_matches_request_grain_statistically() {
        let cfg = AnomalyConfig::default();
        let mut rng = SimRng::new(3);
        let mut fine = AnomalyState::fresh();
        for _ in 0..50_000 {
            fine.apply_request(&cfg, &mut rng);
        }
        let mut coarse = AnomalyState::fresh();
        coarse.apply_requests(&cfg, 50_000, &mut rng);
        let rel = (fine.leaked_mb - coarse.leaked_mb).abs() / fine.leaked_mb;
        assert!(
            rel < 0.05,
            "leaked {} vs {}",
            fine.leaked_mb,
            coarse.leaked_mb
        );
        let t_rel = (fine.stuck_threads as f64 - coarse.stuck_threads as f64).abs()
            / fine.stuck_threads as f64;
        assert!(
            t_rel < 0.1,
            "threads {} vs {}",
            fine.stuck_threads,
            coarse.stuck_threads
        );
    }

    #[test]
    fn reset_clears_everything() {
        let cfg = AnomalyConfig::default();
        let mut st = AnomalyState::fresh();
        let mut rng = SimRng::new(4);
        st.apply_requests(&cfg, 10_000, &mut rng);
        assert!(st.leaked_mb > 0.0);
        st.reset();
        assert_eq!(st, AnomalyState::fresh());
    }

    #[test]
    fn resident_and_burn_accounting() {
        let cfg = AnomalyConfig::default();
        let st = AnomalyState {
            leaked_mb: 100.0,
            stuck_threads: 20,
            leak_events: 100,
            requests_since_refresh: 1000,
        };
        let resident = st.anomaly_resident_mb(&cfg);
        assert!((resident - (100.0 + 20.0 * cfg.thread_stack_mb)).abs() < 1e-12);
        assert!((st.cpu_burn(&cfg) - 20.0 * cfg.thread_cpu_burn).abs() < 1e-12);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SimRng::new(5);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut rng), 100);
        for _ in 0..100 {
            let x = sample_binomial(10, 0.5, &mut rng);
            assert!(x <= 10);
        }
    }

    #[test]
    fn binomial_mean_matches_both_regimes() {
        let mut rng = SimRng::new(6);
        // Small-n exact regime.
        let small: u64 = (0..20_000)
            .map(|_| sample_binomial(40, 0.1, &mut rng))
            .sum();
        let small_mean = small as f64 / 20_000.0;
        assert!((small_mean - 4.0).abs() < 0.1, "small mean {small_mean}");
        // Large-n normal regime.
        let large: u64 = (0..2_000)
            .map(|_| sample_binomial(10_000, 0.1, &mut rng))
            .sum();
        let large_mean = large as f64 / 2_000.0;
        assert!((large_mean - 1000.0).abs() < 5.0, "large mean {large_mean}");
    }

    #[test]
    fn leak_size_mean_is_calibrated() {
        let cfg = AnomalyConfig {
            leak_size_mb: 2.0,
            leak_size_cv: 0.5,
            ..AnomalyConfig::default()
        };
        let mut rng = SimRng::new(7);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| sample_leak_size(&cfg, &mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean leak {mean}");
    }

    #[test]
    fn zero_cv_leak_is_deterministic() {
        let cfg = AnomalyConfig {
            leak_size_mb: 3.0,
            leak_size_cv: 0.0,
            ..AnomalyConfig::default()
        };
        let mut rng = SimRng::new(8);
        assert_eq!(sample_leak_size(&cfg, &mut rng), 3.0);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let cfg = AnomalyConfig {
            leak_prob: 1.5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AnomalyConfig {
            leak_prob: -0.1,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = AnomalyConfig {
            leak_size_cv: -1.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }
}
