//! Service-time model.
//!
//! Each VM is modelled as a processor-sharing queue whose *effective*
//! service rate degrades as anomalies accumulate:
//!
//! * **Memory pressure** — once the resident set spills past RAM into swap,
//!   every request pays a swap penalty that grows linearly with the fraction
//!   of swap in use (up to [`SWAP_PENALTY`]× at full swap).
//! * **CPU theft** — every unterminated thread spin-burns a small fraction
//!   of a reference core ([`AnomalyConfig::thread_cpu_burn`]), shrinking the
//!   compute available to real requests.
//!
//! The per-era response time uses the M/M/1 mean-sojourn formula
//! `R = 1 / (μ_eff − λ)` on the pooled-core service rate, which is exact for
//! a single-core VM and a standard approximation for small multi-core VMs.
//! The same `μ_eff` feeds the ground-truth RTTF computation in
//! [`crate::failure`], so the SLA failure point and the response-time signal
//! are mutually consistent.

use crate::anomaly::{AnomalyConfig, AnomalyState};
use crate::flavor::VmFlavor;
use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Demand multiplier when the swap space is completely full (i.e. requests
/// run `1 + SWAP_PENALTY` times slower at 100 % swap usage).
pub const SWAP_PENALTY: f64 = 3.0;

/// Relative jitter (log-normal cv) applied to measured era response times,
/// representing measurement noise the real monitoring agent would see.
pub const RESPONSE_NOISE_CV: f64 = 0.05;

/// Resident set size of a VM, MiB (baseline plus anomaly growth).
pub fn resident_mb(flavor: &VmFlavor, cfg: &AnomalyConfig, st: &AnomalyState) -> f64 {
    flavor.baseline_resident_mb + st.anomaly_resident_mb(cfg)
}

/// Swap currently in use, MiB.
pub fn swap_used_mb(flavor: &VmFlavor, cfg: &AnomalyConfig, st: &AnomalyState) -> f64 {
    (resident_mb(flavor, cfg, st) - flavor.ram_mb).clamp(0.0, flavor.swap_mb)
}

/// Per-request demand multiplier due to memory pressure (≥ 1).
pub fn swap_slowdown(flavor: &VmFlavor, cfg: &AnomalyConfig, st: &AnomalyState) -> f64 {
    if flavor.swap_mb <= 0.0 {
        return 1.0;
    }
    let frac = swap_used_mb(flavor, cfg, st) / flavor.swap_mb;
    1.0 + SWAP_PENALTY * frac
}

/// Effective pooled service rate, requests/second, after degradation.
/// Zero when stuck threads have burned all compute.
pub fn effective_service_rate(flavor: &VmFlavor, cfg: &AnomalyConfig, st: &AnomalyState) -> f64 {
    let compute = (flavor.compute_capacity() - st.cpu_burn(cfg)).max(0.0);
    let demand = flavor.base_request_demand_s * swap_slowdown(flavor, cfg, st);
    compute / demand
}

/// Mean sojourn time at arrival rate `lambda` (req/s) given effective rate
/// `mu` — M/M/1 with a saturation guard. Returns `None` when the queue is
/// unstable (`lambda >= mu`), i.e. response time grows without bound.
pub fn mm1_response(mu: f64, lambda: f64) -> Option<f64> {
    if mu > lambda && mu > 0.0 {
        Some(1.0 / (mu - lambda))
    } else {
        None
    }
}

/// Outcome of one request in the per-request (event-driven) grain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Sojourn time experienced by the request, seconds.
    pub response_s: f64,
    /// Whether the request triggered an anomaly injection.
    pub anomaly_injected: bool,
}

/// Aggregate outcome of one control era on one VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EraOutcome {
    /// Requests offered to the VM this era.
    pub offered: u64,
    /// Requests completed (equals offered unless the VM failed mid-era).
    pub completed: u64,
    /// Mean response time over the era, seconds (0 when idle).
    pub mean_response_s: f64,
    /// Offered-load utilisation `λ / μ_eff` at era start (may exceed 1).
    pub utilization: f64,
    /// Seconds of the era during which the VM was serving (shorter than the
    /// era when the VM failed mid-era).
    pub active_s: f64,
}

impl EraOutcome {
    /// An era during which the VM served nothing.
    pub fn idle(era_s: f64) -> Self {
        EraOutcome {
            offered: 0,
            completed: 0,
            mean_response_s: 0.0,
            utilization: 0.0,
            active_s: era_s,
        }
    }
}

/// Computes the mean era response time at `lambda` req/s given effective
/// rates at era start and end (the anomaly state drifts during the era, so
/// the harmonic midpoint is used), with multiplicative measurement noise.
///
/// When the queue saturates the response time is clamped to `clamp_s`
/// (callers pass the era length — an overloaded server's clients simply see
/// multi-second stalls, and the SLA failure predicate fires).
pub fn era_response_time(
    mu_start: f64,
    mu_end: f64,
    lambda: f64,
    clamp_s: f64,
    rng: &mut SimRng,
) -> f64 {
    let mu_mid = 0.5 * (mu_start + mu_end);
    let base = match mm1_response(mu_mid, lambda) {
        Some(r) => r.min(clamp_s),
        None => clamp_s,
    };
    if RESPONSE_NOISE_CV == 0.0 {
        return base;
    }
    let sigma2 = (1.0 + RESPONSE_NOISE_CV * RESPONSE_NOISE_CV).ln();
    let noise = rng.log_normal(-sigma2 / 2.0, sigma2.sqrt());
    (base * noise).min(clamp_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> VmFlavor {
        VmFlavor::m3_medium()
    }

    #[test]
    fn fresh_vm_has_no_slowdown() {
        let f = medium();
        let cfg = AnomalyConfig::default();
        let st = AnomalyState::fresh();
        assert_eq!(swap_used_mb(&f, &cfg, &st), 0.0);
        assert_eq!(swap_slowdown(&f, &cfg, &st), 1.0);
        let mu = effective_service_rate(&f, &cfg, &st);
        assert!((mu - f.fresh_service_rate()).abs() < 1e-9);
    }

    #[test]
    fn leaks_push_resident_into_swap() {
        let f = medium();
        let cfg = AnomalyConfig::default();
        let mut st = AnomalyState::fresh();
        // Leak exactly up to RAM: no swap yet.
        st.leaked_mb = f.ram_mb - f.baseline_resident_mb;
        assert_eq!(swap_used_mb(&f, &cfg, &st), 0.0);
        // One more MiB: swap begins.
        st.leaked_mb += 1.0;
        assert!((swap_used_mb(&f, &cfg, &st) - 1.0).abs() < 1e-9);
        assert!(swap_slowdown(&f, &cfg, &st) > 1.0);
    }

    #[test]
    fn full_swap_slowdown_is_one_plus_penalty() {
        let f = medium();
        let cfg = AnomalyConfig::default();
        let mut st = AnomalyState::fresh();
        st.leaked_mb = f.ram_mb + f.swap_mb; // far past everything
        assert!((swap_slowdown(&f, &cfg, &st) - (1.0 + SWAP_PENALTY)).abs() < 1e-9);
    }

    #[test]
    fn stuck_threads_burn_cpu_monotonically() {
        let f = medium();
        let cfg = AnomalyConfig::default();
        let mut st = AnomalyState::fresh();
        let mu0 = effective_service_rate(&f, &cfg, &st);
        st.stuck_threads = 100;
        let mu1 = effective_service_rate(&f, &cfg, &st);
        assert!(mu1 < mu0);
        // Enough threads to burn the whole core: rate hits zero.
        st.stuck_threads = (f.compute_capacity() / cfg.thread_cpu_burn).ceil() as u32 + 1;
        assert_eq!(effective_service_rate(&f, &cfg, &st), 0.0);
    }

    #[test]
    fn mm1_response_basics() {
        assert_eq!(mm1_response(10.0, 5.0), Some(0.2));
        assert_eq!(mm1_response(10.0, 10.0), None);
        assert_eq!(mm1_response(10.0, 12.0), None);
        assert_eq!(mm1_response(0.0, 0.0), None);
    }

    #[test]
    fn era_response_time_clamps_on_saturation() {
        let mut rng = SimRng::new(1);
        let r = era_response_time(10.0, 10.0, 20.0, 30.0, &mut rng);
        assert!(r <= 30.0);
        assert!(
            r > 29.0,
            "saturated response should sit at the clamp, got {r}"
        );
    }

    #[test]
    fn era_response_time_tracks_mm1_mean() {
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| era_response_time(50.0, 50.0, 30.0, 60.0, &mut rng))
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 0.05).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn idle_outcome_is_zeroed() {
        let o = EraOutcome::idle(30.0);
        assert_eq!(o.offered, 0);
        assert_eq!(o.completed, 0);
        assert_eq!(o.mean_response_s, 0.0);
        assert_eq!(o.active_s, 30.0);
    }
}
