//! Virtual-machine, resource and software-anomaly substrate.
//!
//! The paper's testbed ran TPC-W on real VMs (Amazon EC2 `m3.medium` /
//! `m3.small` and private VMware guests) whose servlet code was instrumented
//! to inject software anomalies: **10 % of requests leak memory, 5 % of
//! requests leak an unterminated thread**. This crate is the substitute
//! substrate: a resource-level VM model that
//!
//! * accumulates anomalies at exactly those per-request probabilities,
//! * degrades service (memory pressure → swapping, stuck threads → CPU
//!   theft) as anomalies build up,
//! * crosses a configurable *failure point* (OOM, thread exhaustion, or SLA
//!   violation — the paper's failure point "is not necessarily an actual
//!   crash"),
//! * exposes the F2PM *system feature* vector used to train the RTTF
//!   predictors, and
//! * knows its ground-truth remaining time to failure, which is what the ML
//!   toolchain learns to approximate.
//!
//! The model has two operating grains that share all state:
//!
//! * **per-request** ([`Vm::process_request`]) for the event-driven examples,
//! * **per-era** ([`Vm::process_era`]) — the aggregate used by the control
//!   loop and figure harness, where one call accounts for all requests a VM
//!   served during a control period.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anomaly;
pub mod failure;
pub mod features;
pub mod flavor;
pub mod service;
pub mod vm;

pub use anomaly::{AnomalyConfig, AnomalyState};
pub use failure::{FailureCause, FailureSpec};
pub use features::{FeatureVec, FEATURE_COUNT, FEATURE_NAMES};
pub use flavor::VmFlavor;
pub use service::{EraOutcome, RequestOutcome};
pub use vm::{Vm, VmId, VmState};
