//! VM flavors.
//!
//! A flavor bundles the static capacity parameters of a virtual machine
//! type. The three presets mirror the paper's testbed (Sec. VI-A):
//!
//! * Region 1 — Amazon EC2 **m3.medium** (Ireland): 1 vCPU, 3.75 GB RAM.
//! * Region 2 — Amazon EC2 **m3.small** (Frankfurt): 1 vCPU, ~1.7 GB RAM,
//!   slower core.
//! * Region 3 — private VMware guests (Munich): 2 vCPU, 1 GB RAM, 4 GB disk.
//!
//! Absolute numbers are calibrated so the simulated MTTFs land in the
//! minutes-to-tens-of-minutes range the closed control loop operates on, and
//! so the three flavors are *strongly heterogeneous* — the property the
//! paper's policy study is about.

use serde::{Deserialize, Serialize};

/// Static capacity description of a VM type.
///
/// ```
/// use acm_vm::VmFlavor;
/// let medium = VmFlavor::m3_medium();
/// assert_eq!(medium.fresh_service_rate(), 50.0); // 1 core / 20 ms demand
/// assert!(medium.oom_headroom_mb() > VmFlavor::private_munich().oom_headroom_mb());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmFlavor {
    /// Human-readable flavor name (e.g. `"m3.medium"`).
    pub name: String,
    /// Number of virtual CPU cores.
    pub cpu_cores: u32,
    /// Relative per-core speed (1.0 = reference core).
    pub cpu_speed: f64,
    /// Main memory, MiB.
    pub ram_mb: f64,
    /// Swap space, MiB. Once resident memory spills past RAM the VM slows
    /// down; past RAM + swap it is out of memory.
    pub swap_mb: f64,
    /// Hard cap on OS threads before the thread table is exhausted.
    pub max_threads: u32,
    /// Mean CPU demand of one application request on a reference core,
    /// seconds. The effective demand scales with `1 / cpu_speed` and with the
    /// anomaly-induced degradation factors.
    pub base_request_demand_s: f64,
    /// Memory resident after a fresh boot (OS + application baseline), MiB.
    pub baseline_resident_mb: f64,
    /// Baseline thread count after a fresh boot.
    pub baseline_threads: u32,
}

impl VmFlavor {
    /// Amazon EC2 `m3.medium` as deployed in the paper's Region 1 (Ireland):
    /// 1 vCPU at reference speed, 3.75 GB RAM.
    pub fn m3_medium() -> Self {
        VmFlavor {
            name: "m3.medium".into(),
            cpu_cores: 1,
            cpu_speed: 1.0,
            ram_mb: 3840.0,
            swap_mb: 1024.0,
            max_threads: 1024,
            base_request_demand_s: 0.020,
            baseline_resident_mb: 640.0,
            baseline_threads: 96,
        }
    }

    /// Amazon EC2 `m3.small` as deployed in the paper's Region 2 (Frankfurt):
    /// 1 slower vCPU, 1.7 GB RAM.
    pub fn m3_small() -> Self {
        VmFlavor {
            name: "m3.small".into(),
            cpu_cores: 1,
            cpu_speed: 0.55,
            ram_mb: 1740.0,
            swap_mb: 512.0,
            max_threads: 768,
            base_request_demand_s: 0.020,
            baseline_resident_mb: 512.0,
            baseline_threads: 96,
        }
    }

    /// Private VMware guest as deployed in the paper's Region 3 (Munich,
    /// 32-core HP ProLiant host): 2 vCPU, 1 GB RAM, 4 GB disk.
    pub fn private_munich() -> Self {
        VmFlavor {
            name: "private-munich".into(),
            cpu_cores: 2,
            cpu_speed: 0.85,
            ram_mb: 1024.0,
            swap_mb: 512.0,
            max_threads: 640,
            base_request_demand_s: 0.020,
            baseline_resident_mb: 384.0,
            baseline_threads: 80,
        }
    }

    /// Aggregate compute capacity in reference-core units.
    pub fn compute_capacity(&self) -> f64 {
        self.cpu_cores as f64 * self.cpu_speed
    }

    /// Maximum sustainable request rate (req/s) on a fresh VM.
    pub fn fresh_service_rate(&self) -> f64 {
        self.compute_capacity() / self.base_request_demand_s
    }

    /// Memory headroom available before swapping starts, MiB.
    pub fn ram_headroom_mb(&self) -> f64 {
        (self.ram_mb - self.baseline_resident_mb).max(0.0)
    }

    /// Memory headroom available before the VM is out of memory, MiB.
    pub fn oom_headroom_mb(&self) -> f64 {
        (self.ram_mb + self.swap_mb - self.baseline_resident_mb).max(0.0)
    }

    /// Thread headroom before thread-table exhaustion.
    pub fn thread_headroom(&self) -> u32 {
        self.max_threads.saturating_sub(self.baseline_threads)
    }

    /// Validates internal consistency; returns a description of the first
    /// violated constraint, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.cpu_cores == 0 {
            return Err("flavor must have at least one core".into());
        }
        if self.cpu_speed <= 0.0 || self.cpu_speed.is_nan() {
            return Err("cpu_speed must be positive".into());
        }
        if self.ram_mb <= 0.0 || self.ram_mb.is_nan() {
            return Err("ram_mb must be positive".into());
        }
        if self.swap_mb < 0.0 {
            return Err("swap_mb must be non-negative".into());
        }
        if self.baseline_resident_mb >= self.ram_mb {
            return Err("baseline resident set must fit in RAM".into());
        }
        if self.baseline_threads >= self.max_threads {
            return Err("baseline threads must be below the thread cap".into());
        }
        if self.base_request_demand_s <= 0.0 || self.base_request_demand_s.is_nan() {
            return Err("request demand must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for f in [
            VmFlavor::m3_medium(),
            VmFlavor::m3_small(),
            VmFlavor::private_munich(),
        ] {
            f.validate().unwrap_or_else(|e| panic!("{}: {e}", f.name));
        }
    }

    #[test]
    fn presets_are_heterogeneous() {
        let medium = VmFlavor::m3_medium();
        let small = VmFlavor::m3_small();
        let private = VmFlavor::private_munich();
        // Medium has the most memory headroom; private the least RAM.
        assert!(medium.oom_headroom_mb() > 2.0 * small.oom_headroom_mb());
        assert!(small.oom_headroom_mb() > private.oom_headroom_mb());
        // Private has the most raw compute of the three.
        assert!(private.compute_capacity() > medium.compute_capacity());
        assert!(medium.compute_capacity() > small.compute_capacity());
    }

    #[test]
    fn service_rate_scales_with_capacity() {
        let f = VmFlavor::m3_medium();
        assert!((f.fresh_service_rate() - 50.0).abs() < 1e-9);
        let p = VmFlavor::private_munich();
        assert!(p.fresh_service_rate() > f.fresh_service_rate());
    }

    #[test]
    fn validation_catches_bad_flavors() {
        let mut f = VmFlavor::m3_medium();
        f.cpu_cores = 0;
        assert!(f.validate().is_err());

        let mut f = VmFlavor::m3_medium();
        f.baseline_resident_mb = f.ram_mb;
        assert!(f.validate().is_err());

        let mut f = VmFlavor::m3_medium();
        f.baseline_threads = f.max_threads;
        assert!(f.validate().is_err());

        let mut f = VmFlavor::m3_medium();
        f.base_request_demand_s = 0.0;
        assert!(f.validate().is_err());
    }

    #[test]
    fn headrooms_are_positive_for_presets() {
        for f in [
            VmFlavor::m3_medium(),
            VmFlavor::m3_small(),
            VmFlavor::private_munich(),
        ] {
            assert!(f.ram_headroom_mb() > 0.0);
            assert!(f.oom_headroom_mb() > f.ram_headroom_mb());
            assert!(f.thread_headroom() > 0);
        }
    }
}
