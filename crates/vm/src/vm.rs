//! VM lifecycle and load processing.
//!
//! PCAM keeps some VMs hosting server replicas **ACTIVE** and others
//! **STANDBY**; when a VM's predicted RTTF drops below the user threshold
//! the controller sends the failing VM a REJUVENATE command and a standby an
//! ACTIVATE command (paper Sec. III). [`Vm`] implements that lifecycle plus
//! the two load-processing grains (per request / per era), feature
//! extraction, and ground-truth RTTF.

use crate::anomaly::{AnomalyConfig, AnomalyState};
use crate::failure::{FailureCause, FailureSpec};
use crate::features::{FeatureVec, FEATURE_COUNT};
use crate::flavor::VmFlavor;
use crate::service::{self, EraOutcome, RequestOutcome};
use acm_sim::rng::SimRng;
use acm_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a VM, unique within a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Lifecycle state of a VM replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VmState {
    /// Serving requests.
    Active,
    /// Healthy spare, not serving.
    Standby,
    /// Undergoing software rejuvenation until the given instant.
    Rejuvenating {
        /// Instant at which rejuvenation completes (VM becomes standby).
        until: SimTime,
    },
    /// Reached its failure point at the given instant (reactive recovery —
    /// the situation proactive rejuvenation is meant to avoid).
    Failed {
        /// Instant of failure.
        at: SimTime,
        /// Which predicate fired.
        cause: FailureCause,
    },
}

/// A simulated server-replica VM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vm {
    id: VmId,
    flavor: VmFlavor,
    anomaly_cfg: AnomalyConfig,
    failure_spec: FailureSpec,
    state: VmState,
    anomaly: AnomalyState,
    /// Instant of the last boot or rejuvenation completion.
    last_refresh: SimTime,
    /// Requests currently in service (per-request grain only).
    inflight: u32,
    /// Total completed requests over the VM's life (all epochs).
    total_completed: u64,
    /// Number of rejuvenations performed.
    rejuvenation_count: u64,
    /// Number of (reactive) failures suffered.
    failure_count: u64,
    /// Outcome of the most recent era (drives the response-time feature).
    last_era: Option<EraOutcome>,
    rng: SimRng,
}

impl Vm {
    /// Creates a VM in the given initial state at time zero.
    pub fn new(
        id: VmId,
        flavor: VmFlavor,
        anomaly_cfg: AnomalyConfig,
        failure_spec: FailureSpec,
        state: VmState,
        rng: SimRng,
    ) -> Self {
        flavor.validate().expect("invalid flavor");
        anomaly_cfg.validate().expect("invalid anomaly config");
        Vm {
            id,
            flavor,
            anomaly_cfg,
            failure_spec,
            state,
            anomaly: AnomalyState::fresh(),
            last_refresh: SimTime::ZERO,
            inflight: 0,
            total_completed: 0,
            rejuvenation_count: 0,
            failure_count: 0,
            last_era: None,
            rng,
        }
    }

    /// VM identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The VM's flavor.
    pub fn flavor(&self) -> &VmFlavor {
        &self.flavor
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// True when the VM is serving requests.
    pub fn is_active(&self) -> bool {
        matches!(self.state, VmState::Active)
    }

    /// True when the VM is a healthy spare.
    pub fn is_standby(&self) -> bool {
        matches!(self.state, VmState::Standby)
    }

    /// Accumulated anomaly state (read-only; the monitoring agent cannot see
    /// this, but tests and the ground-truth oracle can).
    pub fn anomaly(&self) -> &AnomalyState {
        &self.anomaly
    }

    /// The failure specification in force.
    pub fn failure_spec(&self) -> &FailureSpec {
        &self.failure_spec
    }

    /// The anomaly-injection configuration in force.
    pub fn anomaly_config(&self) -> &AnomalyConfig {
        &self.anomaly_cfg
    }

    /// Seconds since the last refresh (boot or rejuvenation).
    pub fn age(&self, now: SimTime) -> Duration {
        now.saturating_since(self.last_refresh)
    }

    /// Lifetime number of rejuvenations.
    pub fn rejuvenation_count(&self) -> u64 {
        self.rejuvenation_count
    }

    /// Lifetime number of reactive failures.
    pub fn failure_count(&self) -> u64 {
        self.failure_count
    }

    /// Lifetime completed requests.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    // ----- lifecycle transitions -------------------------------------------

    /// STANDBY → ACTIVE. Panics on an illegal transition.
    pub fn activate(&mut self, now: SimTime) {
        assert!(
            self.is_standby(),
            "{}: ACTIVATE requires STANDBY, was {:?}",
            self.id,
            self.state
        );
        let _ = now;
        self.state = VmState::Active;
    }

    /// ACTIVE → STANDBY (autoscaling deactivation, paper Sec. V). The VM
    /// keeps its accumulated anomaly state — deactivation is not
    /// rejuvenation; a later ACTIVATE resumes from the same damage.
    pub fn deactivate(&mut self, now: SimTime) {
        assert!(
            self.is_active(),
            "{}: DEACTIVATE requires ACTIVE, was {:?}",
            self.id,
            self.state
        );
        let _ = now;
        self.state = VmState::Standby;
        self.inflight = 0;
    }

    /// ACTIVE (or Failed) → REJUVENATING for `duration`. Clears all anomaly
    /// state when rejuvenation completes (see [`Vm::poll_rejuvenation`]).
    pub fn start_rejuvenation(&mut self, now: SimTime, duration: Duration) {
        assert!(
            matches!(self.state, VmState::Active | VmState::Failed { .. }),
            "{}: REJUVENATE requires ACTIVE or FAILED, was {:?}",
            self.id,
            self.state
        );
        self.state = VmState::Rejuvenating {
            until: now + duration,
        };
        self.rejuvenation_count += 1;
        self.inflight = 0;
    }

    /// Completes rejuvenation if its deadline has passed: REJUVENATING →
    /// STANDBY with a fresh anomaly state. Returns `true` on transition.
    pub fn poll_rejuvenation(&mut self, now: SimTime) -> bool {
        if let VmState::Rejuvenating { until } = self.state {
            if now >= until {
                self.state = VmState::Standby;
                self.anomaly.reset();
                self.last_refresh = now;
                self.last_era = None;
                return true;
            }
        }
        false
    }

    /// Marks the VM failed (reactive path).
    fn fail(&mut self, at: SimTime, cause: FailureCause) {
        self.state = VmState::Failed { at, cause };
        self.failure_count += 1;
        self.inflight = 0;
    }

    // ----- load processing --------------------------------------------------

    /// Per-request grain, request start: injects anomalies, computes the
    /// processor-sharing sojourn given the *current* in-flight population,
    /// and admits the request (incrementing in-flight). The caller must
    /// call [`Vm::end_request`] once the sojourn elapses — the event-driven
    /// harness schedules that as a completion event. Returns `None`
    /// (dropping the request) if the VM is not active or fails on arrival.
    pub fn begin_request(&mut self, now: SimTime, lambda_hint: f64) -> Option<RequestOutcome> {
        if !self.is_active() {
            return None;
        }
        if let Some(cause) =
            self.failure_spec
                .check(&self.flavor, &self.anomaly_cfg, &self.anomaly, lambda_hint)
        {
            self.fail(now, cause);
            return None;
        }
        let injected = self.anomaly.apply_request(&self.anomaly_cfg, &mut self.rng);
        let mu = service::effective_service_rate(&self.flavor, &self.anomaly_cfg, &self.anomaly);
        // Processor sharing: each in-flight request dilates service.
        let share = (self.inflight as f64 + 1.0) / mu.max(1e-9);
        self.inflight += 1;
        self.total_completed += 1;
        Some(RequestOutcome {
            response_s: share,
            anomaly_injected: injected,
        })
    }

    /// Per-request grain, request completion: releases one in-flight slot.
    /// Tolerates completions racing a rejuvenation (which clears the
    /// counter).
    pub fn end_request(&mut self) {
        self.inflight = self.inflight.saturating_sub(1);
    }

    /// Requests currently in service (per-request grain).
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// Per-request grain, fire-and-forget: [`Vm::begin_request`] with an
    /// immediate [`Vm::end_request`]. Adequate when the caller does not
    /// model concurrency (sojourns far shorter than inter-arrival gaps).
    pub fn process_request(&mut self, now: SimTime, lambda_hint: f64) -> Option<RequestOutcome> {
        let out = self.begin_request(now, lambda_hint);
        if out.is_some() {
            self.end_request();
        }
        out
    }

    /// Era grain: accounts for one control period of length `era` during
    /// which requests arrived at `lambda` req/s (Poisson). Anomalies
    /// accumulate, the failure point is checked, and the aggregate outcome
    /// is returned. A VM that reaches its failure point mid-era fails at the
    /// ground-truth crossing time and serves nothing afterwards.
    pub fn process_era(&mut self, now: SimTime, era: Duration, lambda: f64) -> EraOutcome {
        let era_s = era.as_secs_f64();
        if !self.is_active() || lambda <= 0.0 {
            let out = EraOutcome::idle(era_s);
            self.last_era = Some(out);
            return out;
        }

        let mu_start =
            service::effective_service_rate(&self.flavor, &self.anomaly_cfg, &self.anomaly);

        // Ground truth: does the failure point arrive inside this era?
        let (rttf_s, cause) =
            self.failure_spec
                .true_rttf(&self.flavor, &self.anomaly_cfg, &self.anomaly, lambda);
        let active_s = rttf_s.min(era_s);

        let offered = self.rng.poisson(lambda * era_s);
        let completed = if active_s >= era_s {
            offered
        } else {
            ((offered as f64) * (active_s / era_s)).round() as u64
        };

        self.anomaly
            .apply_requests(&self.anomaly_cfg, completed, &mut self.rng);
        self.total_completed += completed;

        let mu_end =
            service::effective_service_rate(&self.flavor, &self.anomaly_cfg, &self.anomaly);
        let mean_response_s = if completed == 0 {
            0.0
        } else {
            service::era_response_time(mu_start, mu_end, lambda, era_s, &mut self.rng)
        };

        if active_s < era_s {
            let at = now + Duration::from_secs_f64(active_s);
            self.fail(at, cause.expect("finite RTTF implies a cause"));
        }

        let out = EraOutcome {
            offered,
            completed,
            mean_response_s,
            utilization: if mu_start > 0.0 {
                lambda / mu_start
            } else {
                f64::INFINITY
            },
            active_s,
        };
        self.last_era = Some(out);
        out
    }

    // ----- observation -------------------------------------------------------

    /// The monitoring agent's view: the F2PM feature vector at `now`, given
    /// the VM's current arrival rate.
    pub fn features(&self, now: SimTime, lambda: f64) -> FeatureVec {
        let f = &self.flavor;
        let cfg = &self.anomaly_cfg;
        let resident = service::resident_mb(f, cfg, &self.anomaly);
        let swap = service::swap_used_mb(f, cfg, &self.anomaly);
        let mu = service::effective_service_rate(f, cfg, &self.anomaly);
        let threads = f.baseline_threads as f64 + self.anomaly.stuck_threads as f64;
        let mut v = [0.0; FEATURE_COUNT];
        v[0] = resident;
        v[1] = swap;
        v[2] = resident / (f.ram_mb + f.swap_mb);
        v[3] = threads;
        v[4] = threads / f.max_threads as f64;
        v[5] = if mu > 0.0 {
            (lambda / mu).min(10.0)
        } else {
            10.0
        };
        v[6] = self.last_era.map_or(0.0, |e| e.mean_response_s);
        v[7] = lambda;
        v[8] = self.age(now).as_secs_f64();
        v[9] = self.anomaly.requests_since_refresh as f64;
        v[10] = service::swap_slowdown(f, cfg, &self.anomaly);
        v[11] = (f.ram_mb - resident).max(0.0);
        FeatureVec::new(v)
    }

    /// Ground-truth remaining time to failure at arrival rate `lambda`
    /// (seconds; infinite when the VM will never fail at this rate).
    pub fn true_rttf(&self, lambda: f64) -> f64 {
        self.failure_spec
            .true_rttf(&self.flavor, &self.anomaly_cfg, &self.anomaly, lambda)
            .0
    }

    /// Ground-truth *mean time to failure* estimate: remaining time plus the
    /// age already survived. For the fluid anomaly model this equals the
    /// fresh-VM MTTF at the current rate, which is what the region-level
    /// RMTTF aggregates (paper Eq. 1 feeds on per-VM MTTF estimates).
    pub fn true_mttf(&self, now: SimTime, lambda: f64) -> f64 {
        let rttf = self.true_rttf(lambda);
        if rttf.is_finite() {
            rttf + self.age(now).as_secs_f64()
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_vm(state: VmState) -> Vm {
        Vm::new(
            VmId(1),
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            state,
            SimRng::new(42),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut vm = mk_vm(VmState::Standby);
        assert!(vm.is_standby());
        vm.activate(t(0));
        assert!(vm.is_active());
        vm.start_rejuvenation(t(100), Duration::from_secs(60));
        assert!(matches!(vm.state(), VmState::Rejuvenating { .. }));
        assert!(!vm.poll_rejuvenation(t(120)), "too early");
        assert!(vm.poll_rejuvenation(t(160)));
        assert!(vm.is_standby());
        assert_eq!(vm.rejuvenation_count(), 1);
    }

    #[test]
    #[should_panic(expected = "ACTIVATE requires STANDBY")]
    fn activate_from_active_panics() {
        let mut vm = mk_vm(VmState::Active);
        vm.activate(t(0));
    }

    #[test]
    fn rejuvenation_resets_anomalies_and_age() {
        let mut vm = mk_vm(VmState::Active);
        vm.process_era(t(0), Duration::from_secs(30), 10.0);
        assert!(vm.anomaly().leaked_mb > 0.0);
        vm.start_rejuvenation(t(30), Duration::from_secs(60));
        vm.poll_rejuvenation(t(90));
        assert_eq!(vm.anomaly().leaked_mb, 0.0);
        assert_eq!(vm.age(t(90)), Duration::ZERO);
        assert_eq!(vm.age(t(150)), Duration::from_secs(60));
    }

    #[test]
    fn era_processing_accumulates_and_reports() {
        let mut vm = mk_vm(VmState::Active);
        let out = vm.process_era(t(0), Duration::from_secs(30), 10.0);
        // ~300 requests offered.
        assert!(
            out.offered > 200 && out.offered < 400,
            "offered {}",
            out.offered
        );
        assert_eq!(out.offered, out.completed);
        assert!(out.mean_response_s > 0.0 && out.mean_response_s < 0.1);
        assert!(out.utilization > 0.1 && out.utilization < 0.4);
        assert!(vm.anomaly().leaked_mb > 0.0);
        assert!(vm.anomaly().stuck_threads > 0);
    }

    #[test]
    fn idle_era_for_standby_vm() {
        let mut vm = mk_vm(VmState::Standby);
        let out = vm.process_era(t(0), Duration::from_secs(30), 10.0);
        assert_eq!(out.offered, 0);
        assert_eq!(vm.anomaly().requests_since_refresh, 0);
    }

    #[test]
    fn vm_fails_mid_era_when_rttf_short() {
        let mut vm = mk_vm(VmState::Active);
        // Run eras until the VM fails (no rejuvenation).
        let era = Duration::from_secs(30);
        let mut now = t(0);
        let mut failed_at = None;
        for _ in 0..200 {
            vm.process_era(now, era, 15.0);
            if let VmState::Failed { at, .. } = vm.state() {
                failed_at = Some(at);
                break;
            }
            now += era;
        }
        let at = failed_at.expect("VM should eventually fail under sustained load");
        // MTTF at λ=15 for m3.medium is in the 200–600 s band.
        let secs = at.as_secs_f64();
        assert!(secs > 100.0 && secs < 1000.0, "failed at {secs}");
        assert_eq!(vm.failure_count(), 1);
        // A failed VM serves nothing.
        let out = vm.process_era(now, era, 15.0);
        assert_eq!(out.offered, 0);
    }

    #[test]
    fn failed_vm_can_rejuvenate() {
        let mut vm = mk_vm(VmState::Active);
        let era = Duration::from_secs(30);
        let mut now = t(0);
        while !matches!(vm.state(), VmState::Failed { .. }) {
            vm.process_era(now, era, 20.0);
            now += era;
        }
        vm.start_rejuvenation(now, Duration::from_secs(60));
        assert!(vm.poll_rejuvenation(now + Duration::from_secs(60)));
        assert!(vm.is_standby());
    }

    #[test]
    fn features_reflect_state() {
        let mut vm = mk_vm(VmState::Active);
        let f0 = vm.features(t(0), 10.0);
        vm.process_era(t(0), Duration::from_secs(30), 10.0);
        let f1 = vm.features(t(30), 10.0);
        assert!(f1.get("resident_mb").unwrap() > f0.get("resident_mb").unwrap());
        assert!(f1.get("threads").unwrap() >= f0.get("threads").unwrap());
        assert!(f1.get("age_s").unwrap() == 30.0);
        assert!(f1.get("requests_total").unwrap() > 0.0);
        assert!(f1.get("response_time_s").unwrap() > 0.0);
        assert!(f1.is_finite());
    }

    #[test]
    fn true_rttf_shrinks_over_eras() {
        let mut vm = mk_vm(VmState::Active);
        let r0 = vm.true_rttf(10.0);
        vm.process_era(t(0), Duration::from_secs(30), 10.0);
        let r1 = vm.true_rttf(10.0);
        assert!(r1 < r0);
        // The drop should be roughly the era length (fluid model).
        let drop = r0 - r1;
        assert!(drop > 10.0 && drop < 60.0, "drop {drop}");
    }

    #[test]
    fn true_mttf_is_roughly_stable_during_life() {
        let mut vm = mk_vm(VmState::Active);
        let mut now = t(0);
        let era = Duration::from_secs(30);
        let m0 = vm.true_mttf(now, 10.0);
        for _ in 0..5 {
            vm.process_era(now, era, 10.0);
            now += era;
        }
        let m1 = vm.true_mttf(now, 10.0);
        let rel = (m1 - m0).abs() / m0;
        assert!(rel < 0.15, "MTTF drifted {m0} -> {m1}");
    }

    #[test]
    fn per_request_grain_serves_and_fails() {
        let mut vm = mk_vm(VmState::Active);
        let out = vm.process_request(t(0), 10.0).expect("active VM serves");
        assert!(out.response_s > 0.0);
        assert_eq!(vm.inflight(), 0, "fire-and-forget releases the slot");
        // Standby VM drops requests.
        let mut standby = mk_vm(VmState::Standby);
        assert!(standby.process_request(t(0), 10.0).is_none());
    }

    #[test]
    fn concurrency_dilates_processor_sharing_sojourns() {
        let mut vm = mk_vm(VmState::Active);
        let first = vm.begin_request(t(0), 10.0).unwrap();
        assert_eq!(vm.inflight(), 1);
        let second = vm.begin_request(t(0), 10.0).unwrap();
        assert_eq!(vm.inflight(), 2);
        // The second request shares the processor with the first.
        assert!(
            second.response_s > 1.5 * first.response_s,
            "{} !> 1.5x {}",
            second.response_s,
            first.response_s
        );
        vm.end_request();
        vm.end_request();
        assert_eq!(vm.inflight(), 0);
        // Extra end_request calls are tolerated (rejuvenation races).
        vm.end_request();
        assert_eq!(vm.inflight(), 0);
    }

    #[test]
    fn rejuvenation_clears_inflight() {
        let mut vm = mk_vm(VmState::Active);
        vm.begin_request(t(0), 10.0).unwrap();
        vm.begin_request(t(0), 10.0).unwrap();
        vm.start_rejuvenation(t(1), Duration::from_secs(60));
        assert_eq!(vm.inflight(), 0);
    }
}
