//! Era execution timeline, exportable as Chrome trace-event JSON.
//!
//! While the causal spans of [`trace`](crate::trace) answer *why* a
//! decision happened, the timeline answers *where the wall-clock time
//! went*: per-era MONITOR/ANALYZE/PLAN/EXECUTE slices on the leader
//! track, per-shard monitor slices, and per-worker exec-pool busy
//! slices synthesized from `PoolStatsSnapshot` deltas. The export is the
//! Chrome trace-event format (an object with a `traceEvents` array of
//! `ph:"X"` complete events), which Perfetto and `chrome://tracing`
//! load directly.
//!
//! Timeline slices are **wall-clock** data — like the metric histograms
//! they never feed back into the model and are excluded from the
//! byte-identity contract (the deterministic artifacts are the
//! telemetry, the event log and the span records).

use crate::json::JsonObject;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// One complete slice on a timeline track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSlice {
    /// Track (rendered as a thread row; e.g. 0 = leader, 1+s = shard s).
    pub track: u32,
    /// Static slice label (phase or job name).
    pub name: &'static str,
    /// Start offset from the recorder's epoch, in microseconds.
    pub start_us: u64,
    /// Slice duration in microseconds.
    pub dur_us: u64,
    /// Era the slice belongs to (surfaced as an event argument).
    pub era: u64,
}

#[derive(Debug, Default)]
struct TimelineInner {
    slices: Vec<TimelineSlice>,
    track_names: BTreeMap<u32, String>,
}

/// Collects wall-clock slices against a fixed epoch and serializes them
/// to Chrome trace-event JSON. Thread-safe: shards record concurrently
/// behind one mutex (a handful of pushes per era, nowhere near the hot
/// path).
#[derive(Debug)]
pub struct TimelineRecorder {
    epoch: Instant,
    inner: Mutex<TimelineInner>,
}

impl Default for TimelineRecorder {
    fn default() -> Self {
        TimelineRecorder::new()
    }
}

impl TimelineRecorder {
    /// A recorder whose epoch is "now".
    pub fn new() -> Self {
        TimelineRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(TimelineInner::default()),
        }
    }

    /// Microseconds elapsed since the recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Names a track (idempotent; first name wins). Rendered as the
    /// thread name of the corresponding row.
    pub fn set_track_name(&self, track: u32, name: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .track_names
            .entry(track)
            .or_insert_with(|| name.to_string());
    }

    /// Records one complete slice.
    pub fn record(&self, track: u32, name: &'static str, start_us: u64, dur_us: u64, era: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.slices.push(TimelineSlice {
            track,
            name,
            start_us,
            dur_us,
            era,
        });
    }

    /// Slices recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().slices.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The timeline as one Chrome trace-event JSON document: thread-name
    /// metadata first, then slices sorted by `(start, track, name)` so
    /// the output is stable regardless of which thread pushed first.
    pub fn to_chrome_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut slices = inner.slices.clone();
        slices.sort_by_key(|s| (s.start_us, s.track, s.name));
        let mut events: Vec<String> = Vec::with_capacity(slices.len() + inner.track_names.len());
        for (track, name) in &inner.track_names {
            let mut args = JsonObject::new();
            args.field_str("name", name);
            let mut o = JsonObject::new();
            o.field_str("ph", "M")
                .field_str("name", "thread_name")
                .field_u64("pid", 1)
                .field_u64("tid", *track as u64)
                .field_raw("args", &args.finish());
            events.push(o.finish());
        }
        for s in &slices {
            let mut args = JsonObject::new();
            args.field_u64("era", s.era);
            let mut o = JsonObject::new();
            o.field_str("ph", "X")
                .field_str("name", s.name)
                .field_u64("pid", 1)
                .field_u64("tid", s.track as u64)
                .field_u64("ts", s.start_us)
                .field_u64("dur", s.dur_us)
                .field_raw("args", &args.finish());
            events.push(o.finish());
        }
        let mut doc = JsonObject::new();
        doc.field_str("displayTimeUnit", "ms")
            .field_raw("traceEvents", &crate::json::array(events));
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_loadable_chrome_trace_shape() {
        let tl = TimelineRecorder::new();
        tl.set_track_name(0, "leader");
        tl.set_track_name(1, "shard 0");
        tl.record(1, "monitor.shard", 50, 20, 0);
        tl.record(0, "MONITOR", 0, 100, 0);
        tl.record(0, "ANALYZE", 100, 40, 0);
        let json = tl.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains(r#""ph":"M","name":"thread_name""#));
        assert!(json.contains(r#""args":{"name":"leader"}"#));
        assert!(json.contains(r#""ph":"X","name":"MONITOR","pid":1,"tid":0,"ts":0,"dur":100"#));
        // Slices are sorted by start time regardless of push order.
        let monitor = json.find(r#""name":"MONITOR""#).unwrap();
        let shard = json.find(r#""name":"monitor.shard""#).unwrap();
        let analyze = json.find(r#""name":"ANALYZE""#).unwrap();
        assert!(monitor < shard && shard < analyze);
        assert_eq!(tl.len(), 3);
    }

    #[test]
    fn track_naming_is_first_wins() {
        let tl = TimelineRecorder::new();
        tl.set_track_name(3, "first");
        tl.set_track_name(3, "second");
        assert!(tl.to_chrome_json().contains(r#"{"name":"first"}"#));
        assert!(!tl.to_chrome_json().contains("second"));
    }

    #[test]
    fn empty_recorder_exports_an_empty_event_list() {
        let tl = TimelineRecorder::new();
        assert!(tl.is_empty());
        assert_eq!(
            tl.to_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn now_us_is_monotone() {
        let tl = TimelineRecorder::new();
        let a = tl.now_us();
        let b = tl.now_us();
        assert!(b >= a);
    }
}
