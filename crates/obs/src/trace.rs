//! Deterministic causal spans.
//!
//! A *span* marks one triggering observation or decision in the control
//! plane — a chaos fault firing, a heartbeat timeout, an era's monitor
//! report, a drift signal — and its `parent` link records what caused it.
//! Walking the links from a decision event back to a parentless span
//! reconstructs the "why-chain" the `trace_report` bin prints (fault →
//! suspicion → quarantine → re-plan → readmit).
//!
//! ## Identity without wall clock or randomness
//!
//! Span IDs must be byte-identical across runs and `ACM_THREADS` widths,
//! so they are derived purely from the configured trace seed and a
//! monotonic allocation counter: `id = splitmix64(seed ^ (n+1)·φ64)`
//! (forced non-zero; 0 is the reserved "no parent" sentinel). The control
//! loop allocates spans only on the leader path in era order, so the
//! counter — and with it every ID, parent link and record position — is a
//! pure function of the seed and the configuration. Per-shard child hubs
//! carry the ambient context for event annotation but never allocate
//! spans, so no ID is ever minted on a pool thread.
//!
//! A root span's `trace` ID equals its own span ID and its parent is 0;
//! children inherit the trace ID, which groups a whole causal chain under
//! the observation that opened it. [`TraceContext`] is the two-word
//! `(trace, span)` pair that piggybacks on overlay messages (including
//! through `ShardOutbox` staging) and annotates emitted events.

use crate::json::JsonObject;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Weyl constant (2⁶⁴/φ), the splitmix64 increment.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Default retained-span capacity of a [`Tracer`].
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words into a derived seed (used to give per-shard child
/// hubs distinct — but deterministic — trace seeds).
pub fn mix(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ salt.wrapping_mul(GOLDEN))
}

/// Derives the `n`-th span ID from the trace seed. Never returns 0 (the
/// "no parent" sentinel).
fn derive_id(seed: u64, n: u64) -> u64 {
    let id = splitmix64(seed ^ n.wrapping_add(1).wrapping_mul(GOLDEN));
    if id == 0 {
        GOLDEN
    } else {
        id
    }
}

/// The propagated causal identity: which trace a message/event belongs
/// to, and which span directly caused it. Two words — cheap to copy onto
/// staged overlay messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The root span's ID, shared by every span of the causal chain.
    pub trace: u64,
    /// The immediate cause (a span ID).
    pub span: u64,
}

/// One recorded span: identity, causal links, simulated time and a
/// static name (conventionally the event kind that opened it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's ID (non-zero).
    pub id: u64,
    /// The owning trace (= the root ancestor's span ID).
    pub trace: u64,
    /// Parent span ID; 0 for roots.
    pub parent: u64,
    /// Simulated time the span opened, in microseconds.
    pub t_us: u64,
    /// Static name, dot-namespaced like event kinds.
    pub name: &'static str,
}

impl SpanRecord {
    /// The record as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("id", self.id)
            .field_u64("trace", self.trace)
            .field_u64("parent", self.parent)
            .field_u64("t_us", self.t_us)
            .field_str("name", self.name);
        o.finish()
    }
}

#[derive(Debug, Default)]
struct TracerInner {
    spans: Vec<SpanRecord>,
    dropped: u64,
}

/// Allocates and retains spans for one run. IDs come off `seed` plus a
/// monotonic counter (see the module docs); the record store is bounded
/// by `capacity` — allocation keeps counting past the cap (so later IDs
/// stay deterministic) but overflow records are dropped and counted.
#[derive(Debug)]
pub struct Tracer {
    seed: u64,
    capacity: usize,
    next: AtomicU64,
    inner: Mutex<TracerInner>,
    ambient: Mutex<Option<TraceContext>>,
}

impl Tracer {
    /// A tracer deriving IDs from `seed`, retaining up to
    /// [`DEFAULT_SPAN_CAPACITY`] span records.
    pub fn new(seed: u64) -> Self {
        Tracer::with_capacity(seed, DEFAULT_SPAN_CAPACITY)
    }

    /// A tracer with an explicit retained-record bound.
    pub fn with_capacity(seed: u64, capacity: usize) -> Self {
        Tracer {
            seed,
            capacity,
            next: AtomicU64::new(0),
            inner: Mutex::new(TracerInner::default()),
            ambient: Mutex::new(None),
        }
    }

    /// The ID-derivation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Opens a span at simulated time `t_us`. With `parent: None` the
    /// span is a root (its trace ID is its own ID); otherwise it joins
    /// the parent's trace. Returns the context identifying the new span.
    pub fn span(
        &self,
        t_us: u64,
        name: &'static str,
        parent: Option<TraceContext>,
    ) -> TraceContext {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let id = derive_id(self.seed, n);
        let (trace, parent_id) = match parent {
            Some(p) => (p.trace, p.span),
            None => (id, 0),
        };
        let rec = SpanRecord {
            id,
            trace,
            parent: parent_id,
            t_us,
            name,
        };
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() < self.capacity {
            inner.spans.push(rec);
        } else {
            inner.dropped += 1;
        }
        TraceContext { trace, span: id }
    }

    /// The ambient context: the chain in effect for events emitted
    /// without an explicit cause (the control loop sets it to the era's
    /// root span, and hands it to per-shard child hubs).
    pub fn ambient(&self) -> Option<TraceContext> {
        *self.ambient.lock().unwrap()
    }

    /// Replaces the ambient context.
    pub fn set_ambient(&self, ctx: Option<TraceContext>) {
        *self.ambient.lock().unwrap() = ctx;
    }

    /// Every retained span, in allocation order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.clone()
    }

    /// Spans allocated past the retention cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Retained spans as JSON Lines, in allocation order.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for rec in &inner.spans {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }

    /// Appends a child tracer's retained spans (shard-order child-hub
    /// rollups; child hubs normally allocate nothing, but the fold must
    /// not lose records if one ever does). The ambient context is local
    /// state and is not merged.
    pub fn merge_from(&self, child: &Tracer) {
        let child_inner = child.inner.lock().unwrap();
        let mut inner = self.inner.lock().unwrap();
        for rec in &child_inner.spans {
            if inner.spans.len() < self.capacity {
                inner.spans.push(*rec);
            } else {
                inner.dropped += 1;
            }
        }
        inner.dropped += child_inner.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_nonzero_and_distinct() {
        let a = Tracer::new(42);
        let b = Tracer::new(42);
        let ids_a: Vec<u64> = (0..100).map(|i| a.span(i, "t", None).span).collect();
        let ids_b: Vec<u64> = (0..100).map(|i| b.span(i, "t", None).span).collect();
        assert_eq!(ids_a, ids_b, "same seed, same IDs");
        assert!(ids_a.iter().all(|&id| id != 0));
        let mut uniq = ids_a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ids_a.len(), "IDs collide");
        let other = Tracer::new(43).span(0, "t", None).span;
        assert_ne!(other, ids_a[0], "different seeds diverge");
    }

    #[test]
    fn roots_and_children_link_correctly() {
        let tr = Tracer::new(7);
        let root = tr.span(10, "chaos.partition", None);
        assert_eq!(root.trace, root.span, "root trace is its own ID");
        let child = tr.span(20, "heartbeat.timeout", Some(root));
        assert_eq!(child.trace, root.trace);
        assert_ne!(child.span, root.span);
        let grand = tr.span(30, "region.quarantine", Some(child));
        assert_eq!(grand.trace, root.trace);
        let recs = tr.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].parent, 0);
        assert_eq!(recs[1].parent, root.span);
        assert_eq!(recs[2].parent, child.span);
        assert_eq!(recs[1].name, "heartbeat.timeout");
    }

    #[test]
    fn ambient_round_trips() {
        let tr = Tracer::new(1);
        assert_eq!(tr.ambient(), None);
        let ctx = tr.span(0, "era", None);
        tr.set_ambient(Some(ctx));
        assert_eq!(tr.ambient(), Some(ctx));
        tr.set_ambient(None);
        assert_eq!(tr.ambient(), None);
    }

    #[test]
    fn capacity_bounds_records_but_not_ids() {
        let tr = Tracer::with_capacity(5, 2);
        let ids: Vec<u64> = (0..4).map(|i| tr.span(i, "t", None).span).collect();
        assert_eq!(tr.records().len(), 2);
        assert_eq!(tr.dropped(), 2);
        // IDs past the cap still follow the counter sequence.
        let fresh = Tracer::new(5);
        let fresh_ids: Vec<u64> = (0..4).map(|i| fresh.span(i, "t", None).span).collect();
        assert_eq!(ids, fresh_ids);
    }

    #[test]
    fn jsonl_is_one_object_per_span() {
        let tr = Tracer::new(9);
        let root = tr.span(100, "era", None);
        tr.span(200, "plan.install", Some(root));
        let jsonl = tr.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"name\":\"era\""));
        assert!(jsonl.contains("\"parent\":0"));
        assert!(jsonl.contains(&format!("\"parent\":{}", root.span)));
    }

    #[test]
    fn merge_appends_child_spans() {
        let parent = Tracer::new(3);
        parent.span(0, "era", None);
        let child = Tracer::new(mix(3, 1));
        child.span(5, "rejuvenation.proactive", None);
        parent.merge_from(&child);
        let recs = parent.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].name, "rejuvenation.proactive");
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
    }
}
