//! Minimal hand-rolled JSON writer and reader.
//!
//! The workspace's vendored `serde` is marker-traits only (its derive
//! expands to nothing), so every exporter in the repo writes JSON by
//! hand. This module centralises the things they all need —
//! string escaping, deterministic `f64` formatting, and an object
//! builder — so the event log, `ExperimentTelemetry::to_jsonl` and the
//! bench binaries share one implementation.
//!
//! `f64` values use Rust's `Display` (shortest round-trip
//! representation), which is deterministic across runs and platforms;
//! non-finite values map to `null` since JSON has no NaN/infinity.
//!
//! The reader half ([`parse`] → [`JsonValue`]) exists for the artifacts
//! the workspace must load back — fault-plan reproducers in the chaos
//! corpus, replayed scenario files. Numbers keep their raw token text
//! ([`JsonValue::Num`]) so `u64` seeds survive the round trip exactly
//! instead of being squeezed through an `f64`.

/// Appends `s` to `out` as a JSON string literal (with surrounding
/// quotes), escaping `"`, `\`, every C0 control character and DEL
/// (`\u{7f}`) — DEL is legal unescaped JSON but breaks line-oriented
/// consumers, so it gets the `\uXXXX` treatment too.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_escaped(&mut out, s);
    out
}

/// Appends `v` to `out` as a JSON number (shortest round-trip form);
/// non-finite values become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// `v` as JSON number text (`null` when non-finite).
pub fn fmt_f64(v: f64) -> String {
    let mut out = String::new();
    push_f64(&mut out, v);
    out
}

/// Incremental builder for one JSON object. Fields appear in insertion
/// order; keys are escaped, values typed.
///
/// ```
/// use acm_obs::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.field_str("name", "fig3").field_u64("eras", 120).field_f64("p99_s", 0.25);
/// assert_eq!(o.finish(), r#"{"name":"fig3","eras":120,"p99_s":0.25}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        push_escaped(&mut self.buf, key);
        self.buf.push(':');
        &mut self.buf
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        let buf = self.key(key);
        push_escaped(buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, key: &str, v: i64) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        let buf = self.key(key);
        push_f64(buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (caller guarantees it is
    /// valid JSON — e.g. an array built with [`fmt_f64`]/[`escape`]).
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(json);
        self
    }

    /// Closes and returns the object text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Joins pre-serialized JSON values into an array literal.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// One parsed JSON value.
///
/// Numbers are kept as their raw token text: the corpus stores `u64`
/// seeds, and routing those through `f64` would corrupt anything above
/// 2^53. Use [`JsonValue::as_u64`] / [`JsonValue::as_f64`] to interpret.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as the raw token text (e.g. `"-3"`, `"0.25"`, `"1e9"`).
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in source order (duplicates preserved).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as an exact `u64`, when it is an integral number token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as an exact `i64`, when it is an integral number token.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Field lookup on an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing garbage is an error).
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Reader {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

/// Recursion guard: corpus files are flat, anything deeper is hostile.
const MAX_DEPTH: usize = 64;

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Reader<'_> {
    fn error(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or_else(|| self.error("unexpected end"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump()? == b {
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.error(&format!("bad literal, wanted {text}")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => {
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(out));
                }
                _ => return Err(self.error("expected , or }")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => {
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return Err(self.error("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.bump()? as char)
                                .to_digit(16)
                                .ok_or_else(|| self.error("bad \\u digit"))?;
                            code = code * 16 + d;
                        }
                        // The writer only \u-escapes control chars and DEL,
                        // so surrogate pairs never round-trip through here;
                        // reject rather than half-decode them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| self.error("surrogate in \\u escape"))?;
                        out.push(c);
                    }
                    _ => return Err(self.error("bad escape")),
                },
                b if b < 0x20 => return Err(self.error("raw control char in string")),
                b if b < 0x80 => out.push(b as char),
                b => {
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.error("bad utf-8 lead byte")),
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.error("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("bad utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Validate the token parses; keep the raw text for exact ints.
        text.parse::<f64>()
            .map(|_| JsonValue::Num(text.to_string()))
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("\u{8}\u{c}"), "\"\\b\\f\"");
        assert_eq!(escape("\u{7f}"), "\"\\u007f\"");
        assert_eq!(escape("λ=0.5"), "\"λ=0.5\"");
        // The escaped text is itself free of raw control bytes.
        let nasty: String = (0u32..0x20)
            .chain([0x7f])
            .map(|c| char::from_u32(c).unwrap())
            .collect();
        assert!(escape(&nasty).chars().all(|c| (c as u32) >= 0x20));
    }

    #[test]
    fn f64_formatting_is_shortest_roundtrip_and_null_for_nonfinite() {
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Round-trips exactly.
        let v = 0.123_456_789_012_345_67_f64;
        assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
    }

    #[test]
    fn object_builder_orders_and_types_fields() {
        let mut o = JsonObject::new();
        o.field_str("kind", "plan.install")
            .field_u64("era", 12)
            .field_i64("delta", -3)
            .field_f64("frac", 0.6)
            .field_bool("ok", true)
            .field_raw("xs", &array([fmt_f64(0.5), fmt_f64(0.5)]));
        assert_eq!(
            o.finish(),
            r#"{"kind":"plan.install","era":12,"delta":-3,"frac":0.6,"ok":true,"xs":[0.5,0.5]}"#
        );
    }

    #[test]
    fn empty_object_and_empty_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut o = JsonObject::new();
        o.field_str("kind", "chaos.corpus")
            .field_u64("seed", u64::MAX)
            .field_i64("delta", -42)
            .field_f64("frac", 0.125)
            .field_bool("ok", true)
            .field_raw("xs", &array([fmt_f64(0.5), "null".into()]));
        let text = o.finish();
        let v = parse(&text).expect("writer output parses");
        assert_eq!(
            v.get("kind").and_then(JsonValue::as_str),
            Some("chaos.corpus")
        );
        // u64::MAX survives exactly — this is why Num keeps raw text.
        assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("seed").unwrap().as_f64(), Some(u64::MAX as f64));
        assert_eq!(v.get("delta").and_then(JsonValue::as_i64), Some(-42));
        assert_eq!(v.get("frac").and_then(JsonValue::as_f64), Some(0.125));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        let xs = v.get("xs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(xs[0].as_f64(), Some(0.5));
        assert_eq!(xs[1], JsonValue::Null);
    }

    #[test]
    fn parser_decodes_escapes_and_unicode() {
        let original = "a\"b\\c\nd\u{1}e\u{7f}λ😀";
        let v = parse(&escape(original)).expect("escaped string parses");
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "{",
            r#"{"a":1,}"#,
            "{\"a\":\"\u{1}\"}",
            r#"{"a":01e}"#,
            r#"{"a":1} extra"#,
            r#"{"a":"\q"}"#,
            "[1,2",
            "",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
        // Recursion guard trips instead of blowing the stack.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn parser_accepts_scalars_and_nested_shapes() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        let v = parse(r#"{"a":{"b":[1,{"c":"d"}]}}"#).unwrap();
        let inner = v.get("a").and_then(|a| a.get("b")).unwrap();
        let arr = inner.as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("c").and_then(JsonValue::as_str), Some("d"));
    }
}
