//! Minimal hand-rolled JSON writer.
//!
//! The workspace's vendored `serde` is marker-traits only (its derive
//! expands to nothing), so every exporter in the repo writes JSON by
//! hand. This module centralises the three things they all need —
//! string escaping, deterministic `f64` formatting, and an object
//! builder — so the event log, `ExperimentTelemetry::to_jsonl` and the
//! bench binaries share one implementation.
//!
//! `f64` values use Rust's `Display` (shortest round-trip
//! representation), which is deterministic across runs and platforms;
//! non-finite values map to `null` since JSON has no NaN/infinity.

/// Appends `s` to `out` as a JSON string literal (with surrounding
/// quotes), escaping `"`, `\`, every C0 control character and DEL
/// (`\u{7f}`) — DEL is legal unescaped JSON but breaks line-oriented
/// consumers, so it gets the `\uXXXX` treatment too.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_escaped(&mut out, s);
    out
}

/// Appends `v` to `out` as a JSON number (shortest round-trip form);
/// non-finite values become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// `v` as JSON number text (`null` when non-finite).
pub fn fmt_f64(v: f64) -> String {
    let mut out = String::new();
    push_f64(&mut out, v);
    out
}

/// Incremental builder for one JSON object. Fields appear in insertion
/// order; keys are escaped, values typed.
///
/// ```
/// use acm_obs::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.field_str("name", "fig3").field_u64("eras", 120).field_f64("p99_s", 0.25);
/// assert_eq!(o.finish(), r#"{"name":"fig3","eras":120,"p99_s":0.25}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        push_escaped(&mut self.buf, key);
        self.buf.push(':');
        &mut self.buf
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        let buf = self.key(key);
        push_escaped(buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, key: &str, v: i64) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        let buf = self.key(key);
        push_f64(buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (caller guarantees it is
    /// valid JSON — e.g. an array built with [`fmt_f64`]/[`escape`]).
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        let buf = self.key(key);
        buf.push_str(json);
        self
    }

    /// Closes and returns the object text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Joins pre-serialized JSON values into an array literal.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("\u{8}\u{c}"), "\"\\b\\f\"");
        assert_eq!(escape("\u{7f}"), "\"\\u007f\"");
        assert_eq!(escape("λ=0.5"), "\"λ=0.5\"");
        // The escaped text is itself free of raw control bytes.
        let nasty: String = (0u32..0x20)
            .chain([0x7f])
            .map(|c| char::from_u32(c).unwrap())
            .collect();
        assert!(escape(&nasty).chars().all(|c| (c as u32) >= 0x20));
    }

    #[test]
    fn f64_formatting_is_shortest_roundtrip_and_null_for_nonfinite() {
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Round-trips exactly.
        let v = 0.123_456_789_012_345_67_f64;
        assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
    }

    #[test]
    fn object_builder_orders_and_types_fields() {
        let mut o = JsonObject::new();
        o.field_str("kind", "plan.install")
            .field_u64("era", 12)
            .field_i64("delta", -3)
            .field_f64("frac", 0.6)
            .field_bool("ok", true)
            .field_raw("xs", &array([fmt_f64(0.5), fmt_f64(0.5)]));
        assert_eq!(
            o.finish(),
            r#"{"kind":"plan.install","era":12,"delta":-3,"frac":0.6,"ok":true,"xs":[0.5,0.5]}"#
        );
    }

    #[test]
    fn empty_object_and_empty_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }
}
