//! The metrics registry: counters, gauges and log₂-bucketed histograms.
//!
//! All instruments are relaxed atomics so handles can be cloned onto hot
//! structs and recorded through `&self` without locks; the registry's
//! mutex is touched only at resolution time ([`MetricsRegistry::counter`]
//! etc.), never on the record path. A registry created disabled hands out
//! inert handles whose operations are a single branch.
//!
//! Histograms bucket by the base-2 logarithm of the recorded value
//! (bucket 0 holds exactly 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`),
//! which spans the full `u64` range in 65 buckets — a fixed 520-byte
//! footprint with ~2× relative quantile error, the classic HDR trade-off
//! for hot-path latency tracking.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

// ---------------------------------------------------------------------------
// cores (shared cells)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    value: AtomicU64,
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCore {
    bits: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros` (so 1 → 1,
/// 2..=3 → 2, 4..=7 → 3, …, `u64::MAX` → 64). Branch-free: `v = 0` has 64
/// leading zeros, mapping to bucket 0 without a special case.
#[inline]
fn bucket_of(v: u64) -> usize {
    64 - v.leading_zeros() as usize
}

/// Inclusive value range covered by bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

// ---------------------------------------------------------------------------
// handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter handle (inert when default-built or
/// resolved from a disabled registry).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.core {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for inert handles).
    pub fn value(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    core: Option<Arc<GaugeCore>>,
}

impl Gauge {
    /// Stores a new value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.core {
            c.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for inert handles).
    pub fn value(&self) -> f64 {
        self.core
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.bits.load(Ordering::Relaxed)))
    }
}

/// A log₂-bucketed histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Hist {
    pub(crate) core: Option<Arc<HistCore>>,
}

impl Hist {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let Some(c) = &self.core else { return };
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a finished snapshot into this live histogram (used when
    /// merging per-thread registries). No-op for inert handles or empty
    /// snapshots.
    pub fn merge_snapshot(&self, s: &HistogramSnapshot) {
        let Some(c) = &self.core else { return };
        if s.count == 0 {
            return;
        }
        for (i, &n) in s.buckets.iter().enumerate() {
            if n > 0 {
                c.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        c.count.fetch_add(s.count, Ordering::Relaxed);
        c.sum.fetch_add(s.sum, Ordering::Relaxed);
        c.min.fetch_min(s.min, Ordering::Relaxed);
        c.max.fetch_max(s.max, Ordering::Relaxed);
    }

    /// Point-in-time snapshot (empty for inert handles).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.core {
            None => HistogramSnapshot::default(),
            Some(c) => {
                let mut s = HistogramSnapshot {
                    count: c.count.load(Ordering::Relaxed),
                    sum: c.sum.load(Ordering::Relaxed),
                    min: c.min.load(Ordering::Relaxed),
                    max: c.max.load(Ordering::Relaxed),
                    buckets: [0; BUCKETS],
                };
                if s.count == 0 {
                    s.min = 0;
                }
                for (i, b) in c.buckets.iter().enumerate() {
                    s.buckets[i] = b.load(Ordering::Relaxed);
                }
                s
            }
        }
    }
}

/// Immutable summary of a histogram's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket observation counts (see [`bucket_of`] mapping).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: finds the bucket where the
    /// cumulative count crosses `q · count` and interpolates linearly
    /// within it (the bucket's `n` samples assumed evenly spread over its
    /// value range), clamped to the true observed `[min, max]`. The
    /// interpolation removes the systematic one-bucket-up bias the old
    /// report-the-upper-bound rule had; the answer stays exact to within
    /// the bucket's factor-of-two width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(i);
                // The rank-th sample is the (rank - seen)-th of this
                // bucket's n; place it at the midpoint of its 1/n slice.
                let pos = (rank - seen) as f64 - 0.5;
                let est = lo as f64 + (hi - lo) as f64 * (pos / n as f64);
                return (est.round() as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one (per-region → fleet rollups).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Entry {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Hist(Arc<HistCore>),
}

/// Snapshot value of one registered metric.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Last gauge value.
    Gauge(f64),
    /// Histogram summary (boxed: the bucket array dominates the enum).
    Histogram(Box<HistogramSnapshot>),
}

/// One `(name, value)` row of a registry snapshot.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name (`acm.<crate>.<subsystem>.<metric>`).
    pub name: String,
    /// Recorded state at snapshot time.
    pub value: MetricValue,
}

/// A global-free registry of named instruments. The mutex guards only
/// name resolution; recording goes through the returned atomic handles.
#[derive(Debug)]
pub struct MetricsRegistry {
    active: bool,
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// Creates a registry; a disabled one hands out inert handles and
    /// snapshots empty.
    pub fn new(active: bool) -> Self {
        MetricsRegistry {
            active,
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Gets or creates the named counter. Panics if the name is already
    /// registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.active {
            return Counter::default();
        }
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Entry::Counter(Arc::new(CounterCore::default())));
        match entry {
            Entry::Counter(c) => Counter {
                core: Some(c.clone()),
            },
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Gets or creates the named gauge. Panics on instrument-kind clash.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.active {
            return Gauge::default();
        }
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Entry::Gauge(Arc::new(GaugeCore::default())));
        match entry {
            Entry::Gauge(g) => Gauge {
                core: Some(g.clone()),
            },
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Gets or creates the named histogram. Panics on instrument-kind
    /// clash.
    pub fn histogram(&self, name: &str) -> Hist {
        if !self.active {
            return Hist::default();
        }
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Entry::Hist(Arc::new(HistCore::default())));
        match entry {
            Entry::Hist(h) => Hist {
                core: Some(h.clone()),
            },
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Folds every instrument of `other` into this registry, creating
    /// same-named instruments as needed: counters add, gauges take the
    /// other's last value, histograms merge bucket-wise. Deterministic —
    /// `other` is walked in name order — so merging per-thread registries
    /// in a fixed order (e.g. input-index order after a parallel collect)
    /// always produces the same rollup. No-op when this registry is
    /// disabled.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        if !self.active {
            return;
        }
        for m in other.snapshot() {
            match m.value {
                MetricValue::Counter(v) => self.counter(&m.name).add(v),
                MetricValue::Gauge(v) => self.gauge(&m.name).set(v),
                MetricValue::Histogram(h) => self.histogram(&m.name).merge_snapshot(&h),
            }
        }
    }

    /// Every registered metric as JSON Lines, one object per metric,
    /// sorted by name. Counters: `{"name","type":"counter","value"}`;
    /// gauges: `{"name","type":"gauge","value"}` (`null` when non-finite);
    /// histograms carry `count/sum/min/max/mean/p50/p90/p99`. One call =
    /// one registry snapshot, suitable for writing alongside the event
    /// log so sweeps can diff instrument values mechanically.
    pub fn to_jsonl(&self) -> String {
        use crate::json::JsonObject;
        let mut out = String::new();
        for m in self.snapshot() {
            let mut o = JsonObject::new();
            o.field_str("name", &m.name);
            match m.value {
                MetricValue::Counter(v) => {
                    o.field_str("type", "counter").field_u64("value", v);
                }
                MetricValue::Gauge(v) => {
                    o.field_str("type", "gauge").field_f64("value", v);
                }
                MetricValue::Histogram(h) => {
                    o.field_str("type", "histogram")
                        .field_u64("count", h.count)
                        .field_u64("sum", h.sum)
                        .field_u64("min", h.min)
                        .field_u64("max", h.max)
                        .field_f64("mean", h.mean())
                        .field_u64("p50", h.p50())
                        .field_u64("p90", h.p90())
                        .field_u64("p99", h.p99());
                }
            }
            out.push_str(&o.finish());
            out.push('\n');
        }
        out
    }

    /// Every registered metric with its current state, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.inner.lock().expect("metrics registry poisoned");
        map.iter()
            .map(|(name, entry)| MetricSnapshot {
                name: name.clone(),
                value: match entry {
                    Entry::Counter(c) => MetricValue::Counter(c.value.load(Ordering::Relaxed)),
                    Entry::Gauge(g) => {
                        MetricValue::Gauge(f64::from_bits(g.bits.load(Ordering::Relaxed)))
                    }
                    Entry::Hist(h) => MetricValue::Histogram(Box::new(
                        Hist {
                            core: Some(h.clone()),
                        }
                        .snapshot(),
                    )),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> (MetricsRegistry, Hist) {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("acm.test.hist.h");
        (reg, h)
    }

    #[test]
    fn bucket_mapping_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of((1 << 63) - 1), 63);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's bounds invert the mapping.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn histogram_saturation_at_u64_max() {
        let (_reg, h) = hist();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_zero_and_one() {
        let (_reg, h) = hist();
        h.record(0);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), 1);
    }

    #[test]
    fn quantiles_track_the_distribution_within_bucket_error() {
        let (_reg, h) = hist();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        // Log buckets answer within a factor of two, clamped to [min, max].
        let p50 = s.p50();
        assert!((500..=1000).contains(&p50), "p50 {p50}");
        let p99 = s.p99();
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(s.quantile(0.0), s.min.max(1));
    }

    #[test]
    fn quantiles_interpolate_within_the_winning_bucket() {
        // 1..=1000 uniformly: cumulative count reaches 255 through bucket
        // 8, bucket 9 holds 256..=511 (256 samples), bucket 10 holds
        // 512..=1000 (489 samples). Linear interpolation pins the exact
        // uniform quantiles instead of the bucket upper bounds the old
        // rule reported (p50 = 511, p99 = 1000 by clamping from 1023).
        let (_reg, h) = hist();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 500);
        assert_eq!(s.p90(), 918);
        assert_eq!(s.p99(), 1000, "interpolates past max, clamps back");
        assert_eq!(s.quantile(0.25), 250);
        // A single-sample bucket interpolates to its midpoint, clamped to
        // the observed range.
        let regb = MetricsRegistry::new(true);
        let one = regb.histogram("acm.test.hist.one");
        one.record(100);
        assert_eq!(one.snapshot().p50(), 100);
        // Two samples in one bucket land on the 1/4 and 3/4 points.
        let two = regb.histogram("acm.test.hist.two");
        two.record(64);
        two.record(127);
        let st = two.snapshot();
        assert_eq!(st.p50(), 80, "64 + 63/4 ≈ 80");
        assert_eq!(st.quantile(1.0), 111, "64 + 63·3/4 ≈ 111, within range");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let (_reg, h) = hist();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let (_reg, a) = hist();
        let regb = MetricsRegistry::new(true);
        let b = regb.histogram("acm.test.hist.b");
        a.record(4);
        a.record(8);
        b.record(1);
        b.record(1 << 40);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 4 + 8 + 1 + (1 << 40));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1 << 40);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[4], 1);
        assert_eq!(s.buckets[41], 1);
        // Merging an empty snapshot is a no-op; merging into empty copies.
        let before = s;
        s.merge(&HistogramSnapshot::default());
        assert_eq!(s, before);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new(true);
        let c = reg.counter("acm.test.reg.c");
        c.add(41);
        c.inc();
        assert_eq!(c.value(), 42);
        let g = reg.gauge("acm.test.reg.g");
        g.set(-2.5);
        assert_eq!(g.value(), -2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(matches!(snap[0].value, MetricValue::Counter(42)));
        assert!(matches!(snap[1].value, MetricValue::Gauge(v) if v == -2.5));
    }

    #[test]
    fn jsonl_export_covers_all_instrument_kinds() {
        let reg = MetricsRegistry::new(true);
        reg.counter("acm.test.jsonl.c").add(7);
        reg.gauge("acm.test.jsonl.g").set(2.5);
        reg.gauge("acm.test.jsonl.nan").set(f64::NAN);
        let h = reg.histogram("acm.test.jsonl.h");
        h.record(10);
        h.record(1000);
        let lines: Vec<String> = reg.to_jsonl().lines().map(String::from).collect();
        assert_eq!(lines.len(), 4, "one line per metric");
        assert_eq!(
            lines[0],
            r#"{"name":"acm.test.jsonl.c","type":"counter","value":7}"#
        );
        assert_eq!(
            lines[1],
            r#"{"name":"acm.test.jsonl.g","type":"gauge","value":2.5}"#
        );
        assert!(lines[2].starts_with(r#"{"name":"acm.test.jsonl.h","type":"histogram","count":2,"sum":1010,"min":10,"max":1000,"#));
        assert_eq!(
            lines[3],
            r#"{"name":"acm.test.jsonl.nan","type":"gauge","value":null}"#
        );
        // Disabled registries export nothing.
        assert_eq!(MetricsRegistry::new(false).to_jsonl(), "");
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_clash_panics() {
        let reg = MetricsRegistry::new(true);
        let _ = reg.histogram("acm.test.clash");
        let _ = reg.counter("acm.test.clash");
    }

    #[test]
    fn inactive_registry_hands_out_inert_handles() {
        let reg = MetricsRegistry::new(false);
        let c = reg.counter("acm.test.inert");
        c.add(100);
        assert_eq!(c.value(), 0);
        assert!(reg.snapshot().is_empty());
    }
}
