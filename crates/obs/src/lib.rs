//! In-process observability for the ACM framework.
//!
//! The workspace is built offline, so this crate vendors — with zero
//! external dependencies — the three facilities a `tracing`/`metrics`
//! stack would normally provide:
//!
//! * [`span`] — lightweight wall-clock span timers ([`Timer`] /
//!   [`Span`]) for the Monitor → Analyze → Plan → Execute phases of every
//!   control era, with nesting-depth tracking;
//! * [`metrics`] — a global-free [`MetricsRegistry`] of named
//!   [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Hist`]ograms
//!   (p50/p90/p99/max) for hot-path statistics;
//! * [`event`] — a capacity-bounded, seed-deterministic [`EventLog`]
//!   recording every consequential control decision (rejuvenations,
//!   STANDBY activations, leader changes, plan installs, EWMA updates)
//!   with a JSONL exporter;
//! * [`json`] — the tiny hand-rolled JSON writer the event log and the
//!   bench/telemetry exporters share (the vendored `serde` is marker-only).
//!
//! Everything hangs off an [`Obs`] handle created from an [`ObsConfig`].
//! The default configuration is **on-but-cheap**: metrics are relaxed
//! atomics, spans cost two `Instant` reads, and events go into bounded
//! per-kind stores that pin each kind's earliest records. [`Obs::noop`] yields a disabled instance whose every operation
//! reduces to one branch — its overhead on the hot simulator chain is
//! benchmarked (< 2 %) by `perf_report --obs-gate`.
//!
//! Determinism: metrics and spans measure *wall-clock* (they never feed
//! back into the model), while event records carry only *simulated* time
//! and decision payloads — so the event log and every simulation output
//! are byte-identical per seed whether observability is on or off.
//!
//! Metric names follow `acm.<crate>.<subsystem>.<metric>`; timer
//! histograms record nanoseconds and conventionally end in `_ns`.
//!
//! ```
//! use acm_obs::{Obs, ObsConfig, Value};
//! let obs = Obs::new(ObsConfig::default());
//! let dispatches = obs.counter("acm.pcam.pool.dispatch");
//! dispatches.inc();
//! {
//!     let _era = obs.span("acm.core.control_loop.era_ns");
//!     // ... timed work ...
//! }
//! obs.emit(30_000_000, "rejuvenation.proactive", vec![
//!     ("vm", Value::from(3u64)),
//!     ("predicted_rttf_s", Value::from(84.2)),
//! ]);
//! assert_eq!(dispatches.value(), 1);
//! assert_eq!(obs.events_tail(1)[0].kind, "rejuvenation.proactive");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod slo;
pub mod span;
pub mod timeline;
pub mod trace;

pub use event::{EventLog, EventRecord, Value};
pub use metrics::{
    Counter, Gauge, Hist, HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry,
};
pub use slo::{BurnRateMonitor, SloSpec, SloTransition};
pub use span::{Span, Timer};
pub use timeline::{TimelineRecorder, TimelineSlice};
pub use trace::{SpanRecord, TraceContext, Tracer};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// How much observability a run carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record metrics, spans and events. When `false` every instrument is
    /// inert (a single branch on the hot path).
    pub enabled: bool,
    /// Retention capacity of the structured event log, **per event
    /// kind**: the first quarter of each kind's budget is pinned forever
    /// (early decisions survive long runs), the rest is a most-recent
    /// ring whose evictions are counted as dropped. See
    /// [`event`](crate::event) for the full policy.
    pub event_capacity: usize,
    /// Record causal spans ([`trace`](crate::trace)), the era timeline
    /// ([`timeline`](crate::timeline)) and annotate emitted events with
    /// their trace context. Off by default: a non-traced run's event log
    /// is byte-identical to earlier releases.
    pub trace: bool,
    /// Seed for deterministic span-ID derivation (only read when `trace`
    /// is set; conventionally the experiment seed).
    pub trace_seed: u64,
}

impl Default for ObsConfig {
    /// On-but-cheap: instruments live, 4096 retained events per kind,
    /// tracing off.
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            event_capacity: 4096,
            trace: false,
            trace_seed: 0,
        }
    }
}

impl ObsConfig {
    /// A disabled configuration (every instrument is a no-op).
    pub fn noop() -> Self {
        ObsConfig {
            enabled: false,
            event_capacity: 0,
            trace: false,
            trace_seed: 0,
        }
    }

    /// The default configuration with causal tracing + timeline capture
    /// on, deriving span IDs from `seed`.
    pub fn traced(seed: u64) -> Self {
        ObsConfig {
            trace: true,
            trace_seed: seed,
            ..ObsConfig::default()
        }
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.event_capacity == 0 {
            return Err("enabled observability needs event_capacity > 0".into());
        }
        if self.trace && !self.enabled {
            return Err("tracing needs enabled observability".into());
        }
        Ok(())
    }
}

/// Shared handle to one run's observability state.
pub type ObsHandle = Arc<Obs>;

/// The in-process observability hub: metrics registry + event log + span
/// bookkeeping. Create one per run ([`Obs::new`]) and share it via
/// [`ObsHandle`]; instruments resolved from it ([`Obs::counter`],
/// [`Obs::timer`], …) are cheap clones safe to store on hot structs.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    registry: MetricsRegistry,
    events: EventLog,
    span_depth: Arc<AtomicUsize>,
    tracer: Option<Tracer>,
    timeline: Option<Arc<TimelineRecorder>>,
}

impl Obs {
    /// Builds an observability hub from the configuration.
    pub fn new(cfg: ObsConfig) -> ObsHandle {
        cfg.validate().expect("invalid obs config");
        let trace_on = cfg.enabled && cfg.trace;
        Arc::new(Obs {
            enabled: cfg.enabled,
            registry: MetricsRegistry::new(cfg.enabled),
            events: EventLog::new(if cfg.enabled { cfg.event_capacity } else { 0 }),
            span_depth: Arc::new(AtomicUsize::new(0)),
            tracer: trace_on.then(|| Tracer::new(cfg.trace_seed)),
            timeline: trace_on.then(|| Arc::new(TimelineRecorder::new())),
        })
    }

    /// The shared disabled instance: every operation is a no-op behind one
    /// branch. Instrumented components default to this so un-observed use
    /// stays allocation- and contention-free.
    pub fn noop() -> ObsHandle {
        static NOOP: OnceLock<ObsHandle> = OnceLock::new();
        NOOP.get_or_init(|| Obs::new(ObsConfig::noop())).clone()
    }

    /// Whether this hub records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Resolves (or creates) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Resolves (or creates) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Resolves (or creates) the named histogram.
    pub fn histogram(&self, name: &str) -> Hist {
        self.registry.histogram(name)
    }

    /// Resolves a span timer over the named histogram (elapsed nanoseconds;
    /// by convention the name ends in `_ns`). Resolve once, then
    /// [`Timer::start`] per measurement.
    pub fn timer(&self, name: &str) -> Timer {
        Timer::new(self.histogram(name), self.span_depth.clone())
    }

    /// Opens a one-shot span over the named histogram (resolves the timer
    /// each call; pre-resolve with [`Obs::timer`] on hot paths).
    pub fn span(&self, name: &str) -> Span {
        self.timer(name).start()
    }

    /// Current span nesting depth (0 outside all spans).
    pub fn span_depth(&self) -> usize {
        self.span_depth.load(Ordering::Relaxed)
    }

    /// Appends a structured event at simulated time `t_us` (microseconds).
    /// Events must carry only seed-deterministic payloads — never
    /// wall-clock readings — so logs are identical per seed. When tracing
    /// is on and an ambient context is set, events not already carrying a
    /// `trace` field are annotated with `(trace, cause)` — the chain in
    /// effect when they were emitted.
    pub fn emit(&self, t_us: u64, kind: &'static str, mut fields: Vec<(&'static str, Value)>) {
        if !self.enabled {
            return;
        }
        if let Some(tr) = &self.tracer {
            if let Some(amb) = tr.ambient() {
                if !fields.iter().any(|(k, _)| *k == "trace") {
                    fields.push(("trace", Value::U64(amb.trace)));
                    fields.push(("cause", Value::U64(amb.span)));
                }
            }
        }
        self.events.push(t_us, kind, fields);
    }

    /// Emits an event **with its own span**: opens a span named `kind`
    /// (a root when `parent` is `None`, a child otherwise), annotates the
    /// event with `(trace, span, cause)` and returns the new context so
    /// downstream decisions can chain off it. Without tracing this is
    /// exactly [`Obs::emit`] and returns `None` — the event log stays
    /// byte-identical to a non-traced run.
    pub fn emit_caused(
        &self,
        t_us: u64,
        kind: &'static str,
        mut fields: Vec<(&'static str, Value)>,
        parent: Option<TraceContext>,
    ) -> Option<TraceContext> {
        if !self.enabled {
            return None;
        }
        let Some(tr) = &self.tracer else {
            self.events.push(t_us, kind, fields);
            return None;
        };
        let ctx = tr.span(t_us, kind, parent);
        fields.push(("trace", Value::U64(ctx.trace)));
        fields.push(("span", Value::U64(ctx.span)));
        fields.push(("cause", Value::U64(parent.map_or(0, |p| p.span))));
        self.events.push(t_us, kind, fields);
        Some(ctx)
    }

    /// Whether causal tracing (and the timeline recorder) is active.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The span-ID derivation seed (0 when tracing is off).
    pub fn trace_seed(&self) -> u64 {
        self.tracer.as_ref().map_or(0, |t| t.seed())
    }

    /// Opens a root span at simulated time `t_us` (None without tracing).
    pub fn trace_root(&self, t_us: u64, name: &'static str) -> Option<TraceContext> {
        self.tracer.as_ref().map(|t| t.span(t_us, name, None))
    }

    /// Opens a child span of `parent` (None without tracing).
    pub fn trace_child(
        &self,
        t_us: u64,
        name: &'static str,
        parent: TraceContext,
    ) -> Option<TraceContext> {
        self.tracer
            .as_ref()
            .map(|t| t.span(t_us, name, Some(parent)))
    }

    /// The ambient trace context (None without tracing or when unset).
    pub fn trace_ambient(&self) -> Option<TraceContext> {
        self.tracer.as_ref().and_then(|t| t.ambient())
    }

    /// Sets the ambient trace context annotating subsequent plain emits.
    /// No-op without tracing.
    pub fn set_trace_ambient(&self, ctx: Option<TraceContext>) {
        if let Some(tr) = &self.tracer {
            tr.set_ambient(ctx);
        }
    }

    /// Every retained span record, in allocation order (empty without
    /// tracing).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.tracer.as_ref().map_or_else(Vec::new, |t| t.records())
    }

    /// Retained spans as JSON Lines (empty without tracing).
    pub fn spans_jsonl(&self) -> String {
        self.tracer
            .as_ref()
            .map_or_else(String::new, |t| t.to_jsonl())
    }

    /// Spans allocated past the tracer's retention cap.
    pub fn spans_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, |t| t.dropped())
    }

    /// The wall-clock timeline recorder (None without tracing).
    pub fn timeline_recorder(&self) -> Option<&Arc<TimelineRecorder>> {
        self.timeline.as_ref()
    }

    /// Snapshot of every registered metric, sorted by name.
    pub fn metrics(&self) -> Vec<MetricSnapshot> {
        self.registry.snapshot()
    }

    /// Folds a child hub into this one: counters add, gauges take the
    /// child's last value, histograms merge bucket-wise, and the child's
    /// retained events are re-appended (fresh sequence numbers, original
    /// simulated timestamps). The intended shape is one child `Obs` per
    /// parallel work item, merged **in input-index order** after an
    /// order-stable collect — then the parent rollup is deterministic at
    /// any thread count. No-op when this hub is disabled.
    pub fn merge_from(&self, child: &Obs) {
        if !self.enabled {
            return;
        }
        self.registry.merge_from(&child.registry);
        for rec in child.events.tail(usize::MAX) {
            self.events.push(rec.t_us, rec.kind, rec.fields);
        }
        if let (Some(tr), Some(child_tr)) = (&self.tracer, &child.tracer) {
            tr.merge_from(child_tr);
        }
    }

    /// Snapshot of every registered metric as JSON Lines (one object per
    /// metric, sorted by name) — see [`MetricsRegistry::to_jsonl`].
    pub fn metrics_jsonl(&self) -> String {
        self.registry.to_jsonl()
    }

    /// The most recent `n` event records (oldest first).
    pub fn events_tail(&self, n: usize) -> Vec<EventRecord> {
        self.events.tail(n)
    }

    /// Events currently retained across all kinds.
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// Events evicted after a kind's retention budget filled.
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Per-kind retention pressure: `(kind, retained, dropped)` rows in
    /// kind order — see [`EventLog::kind_stats`].
    pub fn events_kind_stats(&self) -> Vec<(&'static str, usize, u64)> {
        self.events.kind_stats()
    }

    /// The retained event log as JSON Lines (one object per record).
    pub fn events_jsonl(&self) -> String {
        self.events.to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_on_but_cheap() {
        let cfg = ObsConfig::default();
        assert!(cfg.enabled);
        assert!(cfg.event_capacity > 0);
        cfg.validate().unwrap();
    }

    #[test]
    fn noop_records_nothing() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        let c = obs.counter("acm.test.noop.counter");
        c.inc();
        c.add(10);
        assert_eq!(c.value(), 0);
        obs.gauge("acm.test.noop.gauge").set(3.5);
        obs.histogram("acm.test.noop.hist").record(7);
        {
            let s = obs.span("acm.test.noop.span_ns");
            assert!(!s.is_active());
        }
        obs.emit(1, "decision", vec![("x", Value::from(1u64))]);
        assert!(obs.metrics().is_empty());
        assert_eq!(obs.events_len(), 0);
        assert_eq!(obs.events_jsonl(), "");
    }

    #[test]
    fn enabled_hub_records_everything() {
        let obs = Obs::new(ObsConfig::default());
        obs.counter("acm.a.b.c").add(3);
        obs.gauge("acm.a.b.g").set(1.25);
        obs.histogram("acm.a.b.h").record(100);
        obs.emit(5, "k", vec![("v", Value::from(true))]);
        assert_eq!(obs.metrics().len(), 3);
        assert_eq!(obs.events_len(), 1);
        assert!(obs.events_jsonl().contains("\"kind\":\"k\""));
    }

    #[test]
    fn counters_resolve_to_the_same_cell() {
        let obs = Obs::new(ObsConfig::default());
        let a = obs.counter("acm.x.y.z");
        let b = obs.counter("acm.x.y.z");
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(obs.metrics().len(), 1);
    }

    #[test]
    fn merge_from_folds_child_hubs() {
        let parent = Obs::new(ObsConfig::default());
        parent.counter("acm.t.merge.c").add(1);
        parent.gauge("acm.t.merge.g").set(1.0);
        parent.histogram("acm.t.merge.h").record(4);

        let child = Obs::new(ObsConfig::default());
        child.counter("acm.t.merge.c").add(2);
        child.counter("acm.t.merge.child_only").inc();
        child.gauge("acm.t.merge.g").set(7.5);
        child.histogram("acm.t.merge.h").record(4);
        child.histogram("acm.t.merge.h").record(1000);
        child.emit(42, "child.event", vec![("n", Value::from(3u64))]);

        parent.merge_from(&child);
        assert_eq!(parent.counter("acm.t.merge.c").value(), 3);
        assert_eq!(parent.counter("acm.t.merge.child_only").value(), 1);
        assert_eq!(parent.gauge("acm.t.merge.g").value(), 7.5);
        let MetricValue::Histogram(h) = parent
            .metrics()
            .into_iter()
            .find(|m| m.name == "acm.t.merge.h")
            .unwrap()
            .value
        else {
            panic!("histogram expected");
        };
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 1000);
        // The child's events land in the parent log with their simulated
        // timestamps intact.
        let tail = parent.events_tail(1);
        assert_eq!(tail[0].kind, "child.event");
        assert_eq!(tail[0].t_us, 42);

        // Merging into a disabled hub is a no-op.
        let off = Obs::noop();
        off.merge_from(&child);
        assert!(off.metrics().is_empty());
        assert_eq!(off.events_len(), 0);
    }

    #[test]
    #[should_panic(expected = "event_capacity")]
    fn enabled_zero_capacity_rejected() {
        let _ = Obs::new(ObsConfig {
            enabled: true,
            event_capacity: 0,
            ..ObsConfig::default()
        });
    }

    #[test]
    fn tracing_on_a_disabled_hub_is_rejected() {
        let cfg = ObsConfig {
            enabled: false,
            event_capacity: 0,
            trace: true,
            trace_seed: 1,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn non_traced_hub_emits_without_annotation() {
        let obs = Obs::new(ObsConfig::default());
        assert!(!obs.trace_enabled());
        assert_eq!(obs.trace_root(0, "era"), None);
        assert_eq!(obs.emit_caused(5, "plan.install", vec![], None), None);
        let tail = obs.events_tail(1);
        assert!(tail[0].fields.is_empty(), "no trace fields without tracing");
        assert!(obs.spans().is_empty());
        assert_eq!(obs.spans_jsonl(), "");
        assert!(obs.timeline_recorder().is_none());
    }

    #[test]
    fn traced_hub_annotates_and_chains() {
        let obs = Obs::new(ObsConfig::traced(2025));
        assert!(obs.trace_enabled());
        assert_eq!(obs.trace_seed(), 2025);
        let fault = obs
            .emit_caused(10, "chaos.partition", vec![("n", Value::from(2u64))], None)
            .unwrap();
        let quarantine = obs
            .emit_caused(20, "region.quarantine", vec![], Some(fault))
            .unwrap();
        assert_eq!(quarantine.trace, fault.trace);
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].parent, fault.span);
        // Event fields carry the identity.
        let tail = obs.events_tail(2);
        let get = |rec: &EventRecord, key: &str| {
            rec.fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get(&tail[0], "cause"), Some(Value::U64(0)));
        assert_eq!(get(&tail[1], "cause"), Some(Value::U64(fault.span)));
        assert_eq!(get(&tail[1], "trace"), Some(Value::U64(fault.trace)));
        assert!(obs.timeline_recorder().is_some());
    }

    #[test]
    fn ambient_context_annotates_plain_emits_once() {
        let obs = Obs::new(ObsConfig::traced(7));
        let era = obs.trace_root(0, "era").unwrap();
        obs.set_trace_ambient(Some(era));
        obs.emit(5, "ewma.update", vec![("raw_s", Value::from(1.5))]);
        // An event already carrying a trace field is left alone.
        let fault = obs.emit_caused(6, "chaos.heal", vec![], None).unwrap();
        let tail = obs.events_tail(2);
        let trace_of = |rec: &EventRecord| {
            rec.fields
                .iter()
                .find(|(k, _)| *k == "trace")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(trace_of(&tail[0]), Some(Value::U64(era.trace)));
        assert_eq!(trace_of(&tail[1]), Some(Value::U64(fault.trace)));
        assert_ne!(fault.trace, era.trace, "explicit root ignores ambient");
        obs.set_trace_ambient(None);
        obs.emit(7, "ewma.update", vec![]);
        assert!(obs.events_tail(1)[0].fields.is_empty());
    }

    #[test]
    fn merge_from_folds_child_spans() {
        let parent = Obs::new(ObsConfig::traced(1));
        parent.trace_root(0, "era");
        let child = Obs::new(ObsConfig {
            trace_seed: trace::mix(1, 42),
            ..ObsConfig::traced(1)
        });
        child.trace_root(5, "rejuvenation.proactive");
        parent.merge_from(&child);
        assert_eq!(parent.spans().len(), 2);
        assert_eq!(parent.spans()[1].name, "rejuvenation.proactive");
    }
}
