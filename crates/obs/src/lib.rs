//! In-process observability for the ACM framework.
//!
//! The workspace is built offline, so this crate vendors — with zero
//! external dependencies — the three facilities a `tracing`/`metrics`
//! stack would normally provide:
//!
//! * [`span`] — lightweight wall-clock span timers ([`Timer`] /
//!   [`Span`]) for the Monitor → Analyze → Plan → Execute phases of every
//!   control era, with nesting-depth tracking;
//! * [`metrics`] — a global-free [`MetricsRegistry`] of named
//!   [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Hist`]ograms
//!   (p50/p90/p99/max) for hot-path statistics;
//! * [`event`] — a capacity-bounded, seed-deterministic [`EventLog`]
//!   recording every consequential control decision (rejuvenations,
//!   STANDBY activations, leader changes, plan installs, EWMA updates)
//!   with a JSONL exporter;
//! * [`json`] — the tiny hand-rolled JSON writer the event log and the
//!   bench/telemetry exporters share (the vendored `serde` is marker-only).
//!
//! Everything hangs off an [`Obs`] handle created from an [`ObsConfig`].
//! The default configuration is **on-but-cheap**: metrics are relaxed
//! atomics, spans cost two `Instant` reads, and events go into bounded
//! per-kind stores that pin each kind's earliest records. [`Obs::noop`] yields a disabled instance whose every operation
//! reduces to one branch — its overhead on the hot simulator chain is
//! benchmarked (< 2 %) by `perf_report --obs-gate`.
//!
//! Determinism: metrics and spans measure *wall-clock* (they never feed
//! back into the model), while event records carry only *simulated* time
//! and decision payloads — so the event log and every simulation output
//! are byte-identical per seed whether observability is on or off.
//!
//! Metric names follow `acm.<crate>.<subsystem>.<metric>`; timer
//! histograms record nanoseconds and conventionally end in `_ns`.
//!
//! ```
//! use acm_obs::{Obs, ObsConfig, Value};
//! let obs = Obs::new(ObsConfig::default());
//! let dispatches = obs.counter("acm.pcam.pool.dispatch");
//! dispatches.inc();
//! {
//!     let _era = obs.span("acm.core.control_loop.era_ns");
//!     // ... timed work ...
//! }
//! obs.emit(30_000_000, "rejuvenation.proactive", vec![
//!     ("vm", Value::from(3u64)),
//!     ("predicted_rttf_s", Value::from(84.2)),
//! ]);
//! assert_eq!(dispatches.value(), 1);
//! assert_eq!(obs.events_tail(1)[0].kind, "rejuvenation.proactive");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod span;

pub use event::{EventLog, EventRecord, Value};
pub use metrics::{
    Counter, Gauge, Hist, HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry,
};
pub use span::{Span, Timer};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// How much observability a run carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record metrics, spans and events. When `false` every instrument is
    /// inert (a single branch on the hot path).
    pub enabled: bool,
    /// Retention capacity of the structured event log, **per event
    /// kind**: the first quarter of each kind's budget is pinned forever
    /// (early decisions survive long runs), the rest is a most-recent
    /// ring whose evictions are counted as dropped. See
    /// [`event`](crate::event) for the full policy.
    pub event_capacity: usize,
}

impl Default for ObsConfig {
    /// On-but-cheap: instruments live, 4096 retained events per kind.
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            event_capacity: 4096,
        }
    }
}

impl ObsConfig {
    /// A disabled configuration (every instrument is a no-op).
    pub fn noop() -> Self {
        ObsConfig {
            enabled: false,
            event_capacity: 0,
        }
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.event_capacity == 0 {
            return Err("enabled observability needs event_capacity > 0".into());
        }
        Ok(())
    }
}

/// Shared handle to one run's observability state.
pub type ObsHandle = Arc<Obs>;

/// The in-process observability hub: metrics registry + event log + span
/// bookkeeping. Create one per run ([`Obs::new`]) and share it via
/// [`ObsHandle`]; instruments resolved from it ([`Obs::counter`],
/// [`Obs::timer`], …) are cheap clones safe to store on hot structs.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    registry: MetricsRegistry,
    events: EventLog,
    span_depth: Arc<AtomicUsize>,
}

impl Obs {
    /// Builds an observability hub from the configuration.
    pub fn new(cfg: ObsConfig) -> ObsHandle {
        cfg.validate().expect("invalid obs config");
        Arc::new(Obs {
            enabled: cfg.enabled,
            registry: MetricsRegistry::new(cfg.enabled),
            events: EventLog::new(if cfg.enabled { cfg.event_capacity } else { 0 }),
            span_depth: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The shared disabled instance: every operation is a no-op behind one
    /// branch. Instrumented components default to this so un-observed use
    /// stays allocation- and contention-free.
    pub fn noop() -> ObsHandle {
        static NOOP: OnceLock<ObsHandle> = OnceLock::new();
        NOOP.get_or_init(|| Obs::new(ObsConfig::noop())).clone()
    }

    /// Whether this hub records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Resolves (or creates) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Resolves (or creates) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Resolves (or creates) the named histogram.
    pub fn histogram(&self, name: &str) -> Hist {
        self.registry.histogram(name)
    }

    /// Resolves a span timer over the named histogram (elapsed nanoseconds;
    /// by convention the name ends in `_ns`). Resolve once, then
    /// [`Timer::start`] per measurement.
    pub fn timer(&self, name: &str) -> Timer {
        Timer::new(self.histogram(name), self.span_depth.clone())
    }

    /// Opens a one-shot span over the named histogram (resolves the timer
    /// each call; pre-resolve with [`Obs::timer`] on hot paths).
    pub fn span(&self, name: &str) -> Span {
        self.timer(name).start()
    }

    /// Current span nesting depth (0 outside all spans).
    pub fn span_depth(&self) -> usize {
        self.span_depth.load(Ordering::Relaxed)
    }

    /// Appends a structured event at simulated time `t_us` (microseconds).
    /// Events must carry only seed-deterministic payloads — never
    /// wall-clock readings — so logs are identical per seed.
    pub fn emit(&self, t_us: u64, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if self.enabled {
            self.events.push(t_us, kind, fields);
        }
    }

    /// Snapshot of every registered metric, sorted by name.
    pub fn metrics(&self) -> Vec<MetricSnapshot> {
        self.registry.snapshot()
    }

    /// Folds a child hub into this one: counters add, gauges take the
    /// child's last value, histograms merge bucket-wise, and the child's
    /// retained events are re-appended (fresh sequence numbers, original
    /// simulated timestamps). The intended shape is one child `Obs` per
    /// parallel work item, merged **in input-index order** after an
    /// order-stable collect — then the parent rollup is deterministic at
    /// any thread count. No-op when this hub is disabled.
    pub fn merge_from(&self, child: &Obs) {
        if !self.enabled {
            return;
        }
        self.registry.merge_from(&child.registry);
        for rec in child.events.tail(usize::MAX) {
            self.events.push(rec.t_us, rec.kind, rec.fields);
        }
    }

    /// Snapshot of every registered metric as JSON Lines (one object per
    /// metric, sorted by name) — see [`MetricsRegistry::to_jsonl`].
    pub fn metrics_jsonl(&self) -> String {
        self.registry.to_jsonl()
    }

    /// The most recent `n` event records (oldest first).
    pub fn events_tail(&self, n: usize) -> Vec<EventRecord> {
        self.events.tail(n)
    }

    /// Events currently retained across all kinds.
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// Events evicted after a kind's retention budget filled.
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// The retained event log as JSON Lines (one object per record).
    pub fn events_jsonl(&self) -> String {
        self.events.to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_on_but_cheap() {
        let cfg = ObsConfig::default();
        assert!(cfg.enabled);
        assert!(cfg.event_capacity > 0);
        cfg.validate().unwrap();
    }

    #[test]
    fn noop_records_nothing() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        let c = obs.counter("acm.test.noop.counter");
        c.inc();
        c.add(10);
        assert_eq!(c.value(), 0);
        obs.gauge("acm.test.noop.gauge").set(3.5);
        obs.histogram("acm.test.noop.hist").record(7);
        {
            let s = obs.span("acm.test.noop.span_ns");
            assert!(!s.is_active());
        }
        obs.emit(1, "decision", vec![("x", Value::from(1u64))]);
        assert!(obs.metrics().is_empty());
        assert_eq!(obs.events_len(), 0);
        assert_eq!(obs.events_jsonl(), "");
    }

    #[test]
    fn enabled_hub_records_everything() {
        let obs = Obs::new(ObsConfig::default());
        obs.counter("acm.a.b.c").add(3);
        obs.gauge("acm.a.b.g").set(1.25);
        obs.histogram("acm.a.b.h").record(100);
        obs.emit(5, "k", vec![("v", Value::from(true))]);
        assert_eq!(obs.metrics().len(), 3);
        assert_eq!(obs.events_len(), 1);
        assert!(obs.events_jsonl().contains("\"kind\":\"k\""));
    }

    #[test]
    fn counters_resolve_to_the_same_cell() {
        let obs = Obs::new(ObsConfig::default());
        let a = obs.counter("acm.x.y.z");
        let b = obs.counter("acm.x.y.z");
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(obs.metrics().len(), 1);
    }

    #[test]
    fn merge_from_folds_child_hubs() {
        let parent = Obs::new(ObsConfig::default());
        parent.counter("acm.t.merge.c").add(1);
        parent.gauge("acm.t.merge.g").set(1.0);
        parent.histogram("acm.t.merge.h").record(4);

        let child = Obs::new(ObsConfig::default());
        child.counter("acm.t.merge.c").add(2);
        child.counter("acm.t.merge.child_only").inc();
        child.gauge("acm.t.merge.g").set(7.5);
        child.histogram("acm.t.merge.h").record(4);
        child.histogram("acm.t.merge.h").record(1000);
        child.emit(42, "child.event", vec![("n", Value::from(3u64))]);

        parent.merge_from(&child);
        assert_eq!(parent.counter("acm.t.merge.c").value(), 3);
        assert_eq!(parent.counter("acm.t.merge.child_only").value(), 1);
        assert_eq!(parent.gauge("acm.t.merge.g").value(), 7.5);
        let MetricValue::Histogram(h) = parent
            .metrics()
            .into_iter()
            .find(|m| m.name == "acm.t.merge.h")
            .unwrap()
            .value
        else {
            panic!("histogram expected");
        };
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 1000);
        // The child's events land in the parent log with their simulated
        // timestamps intact.
        let tail = parent.events_tail(1);
        assert_eq!(tail[0].kind, "child.event");
        assert_eq!(tail[0].t_us, 42);

        // Merging into a disabled hub is a no-op.
        let off = Obs::noop();
        off.merge_from(&child);
        assert!(off.metrics().is_empty());
        assert_eq!(off.events_len(), 0);
    }

    #[test]
    #[should_panic(expected = "event_capacity")]
    fn enabled_zero_capacity_rejected() {
        let _ = Obs::new(ObsConfig {
            enabled: true,
            event_capacity: 0,
        });
    }
}
