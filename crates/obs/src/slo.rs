//! Multi-window burn-rate SLO monitors.
//!
//! An SLO says "at least `objective` of requests succeed". The *burn
//! rate* over a window is the observed error rate divided by the error
//! budget `1 - objective`: burn 1 means the budget is being consumed
//! exactly at the sustainable pace, burn 10 means ten times too fast.
//! Following the classic multi-window alerting recipe, a monitor fires
//! only when **both** a short window (fast, catches the onset) and a
//! long window (slow, filters blips) exceed their thresholds, and
//! recovers once the fast window's burn drops below 1.
//!
//! The control loop evaluates monitors at era boundaries over
//! seed-deterministic inputs (report deliveries, completed-request
//! counts), so `slo.burn`/`slo.recovered` events are byte-identical per
//! seed — chaos reports correlate them with fault windows mechanically.

use std::collections::VecDeque;

/// One SLO definition plus its alerting windows (window units are eras).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Static name (`availability`, `latency`, …).
    pub name: &'static str,
    /// Target good/total ratio in `(0, 1)`.
    pub objective: f64,
    /// Short-window length, in observations (eras).
    pub fast_window: usize,
    /// Burn-rate threshold for the short window.
    pub fast_threshold: f64,
    /// Long-window length, in observations (eras).
    pub slow_window: usize,
    /// Burn-rate threshold for the long window.
    pub slow_threshold: f64,
}

impl SloSpec {
    /// The control-plane availability SLO: 95% of per-era region reports
    /// reach the leader; page at 4× burn over 3 eras backed by 2× over
    /// 12 eras.
    pub fn availability() -> Self {
        SloSpec {
            name: "availability",
            objective: 0.95,
            fast_window: 3,
            fast_threshold: 4.0,
            slow_window: 12,
            slow_threshold: 2.0,
        }
    }

    /// The data-plane latency SLO: 95% of completed requests come from
    /// regions meeting the paper's 1-second response SLA, same windows.
    pub fn latency() -> Self {
        SloSpec {
            name: "latency",
            objective: 0.95,
            fast_window: 3,
            fast_threshold: 4.0,
            slow_window: 12,
            slow_threshold: 2.0,
        }
    }

    /// Sanity-checks the definition.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.objective > 0.0 && self.objective < 1.0) {
            return Err(format!("{}: objective must be in (0,1)", self.name));
        }
        if self.fast_window == 0 || self.slow_window < self.fast_window {
            return Err(format!(
                "{}: need 0 < fast_window <= slow_window",
                self.name
            ));
        }
        if self.fast_threshold < self.slow_threshold {
            return Err(format!(
                "{}: fast threshold must be >= slow threshold",
                self.name
            ));
        }
        Ok(())
    }
}

/// A state transition returned by [`BurnRateMonitor::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloTransition {
    /// Both windows crossed their thresholds; the monitor is now firing.
    Fired {
        /// Fast-window burn rate at the crossing.
        fast_burn: f64,
        /// Slow-window burn rate at the crossing.
        slow_burn: f64,
    },
    /// The fast window fell back under burn 1; the monitor cleared.
    Recovered {
        /// Fast-window burn rate at recovery.
        fast_burn: f64,
    },
}

/// Evaluates one SLO's multi-window burn rate over a ring of per-era
/// `(good, total)` observations.
#[derive(Debug, Clone)]
pub struct BurnRateMonitor {
    spec: SloSpec,
    ring: VecDeque<(u64, u64)>,
    firing: bool,
}

impl BurnRateMonitor {
    /// A monitor for `spec` (panics on an invalid spec — specs are code,
    /// not user input).
    pub fn new(spec: SloSpec) -> Self {
        spec.validate().expect("invalid SLO spec");
        BurnRateMonitor {
            spec,
            ring: VecDeque::with_capacity(spec.slow_window),
            firing: false,
        }
    }

    /// The monitored SLO.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Whether the monitor is currently firing.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Burn rate over the most recent `window` observations (fewer if
    /// the ring has not filled yet; 0 when nothing was requested).
    pub fn burn_over(&self, window: usize) -> f64 {
        let take = window.min(self.ring.len());
        let mut good = 0u64;
        let mut total = 0u64;
        for &(g, t) in self.ring.iter().rev().take(take) {
            good += g;
            total += t;
        }
        if total == 0 {
            return 0.0;
        }
        let err = 1.0 - good as f64 / total as f64;
        err / (1.0 - self.spec.objective)
    }

    /// Feeds one era's `(good, total)` outcome and returns a transition
    /// when the firing state changes. The fast window must be full
    /// before the monitor can fire (no alerting off one sample).
    pub fn observe(&mut self, good: u64, total: u64) -> Option<SloTransition> {
        if self.ring.len() == self.spec.slow_window {
            self.ring.pop_front();
        }
        self.ring.push_back((good.min(total), total));
        let fast_burn = self.burn_over(self.spec.fast_window);
        let slow_burn = self.burn_over(self.spec.slow_window);
        if !self.firing
            && self.ring.len() >= self.spec.fast_window
            && fast_burn >= self.spec.fast_threshold
            && slow_burn >= self.spec.slow_threshold
        {
            self.firing = true;
            return Some(SloTransition::Fired {
                fast_burn,
                slow_burn,
            });
        }
        if self.firing && fast_burn < 1.0 {
            self.firing = false;
            return Some(SloTransition::Recovered { fast_burn });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec {
            name: "test",
            objective: 0.95,
            fast_window: 3,
            fast_threshold: 4.0,
            slow_window: 12,
            slow_threshold: 2.0,
        }
    }

    #[test]
    fn healthy_stream_never_fires() {
        let mut m = BurnRateMonitor::new(spec());
        for _ in 0..50 {
            assert_eq!(m.observe(100, 100), None);
        }
        assert!(!m.firing());
        assert_eq!(m.burn_over(3), 0.0);
    }

    #[test]
    fn outage_fires_then_recovers_after_clean_eras() {
        let mut m = BurnRateMonitor::new(spec());
        for _ in 0..12 {
            m.observe(2, 2); // fill the slow window healthy
        }
        // 50% error rate = burn 10 against a 5% budget.
        assert_eq!(m.observe(1, 2), None, "one bad era: slow window holds");
        assert_eq!(m.observe(1, 2), None);
        let fired = m.observe(1, 2);
        match fired {
            Some(SloTransition::Fired {
                fast_burn,
                slow_burn,
            }) => {
                assert!((fast_burn - 10.0).abs() < 1e-9, "fast {fast_burn}");
                assert!(slow_burn >= 2.0, "slow {slow_burn}");
            }
            other => panic!("expected Fired, got {other:?}"),
        }
        assert!(m.firing());
        // Still burning: no duplicate transition.
        assert_eq!(m.observe(1, 2), None);
        // Three clean eras flush the fast window below burn 1.
        assert_eq!(m.observe(2, 2), None);
        assert_eq!(m.observe(2, 2), None);
        match m.observe(2, 2) {
            Some(SloTransition::Recovered { fast_burn }) => {
                assert_eq!(fast_burn, 0.0);
            }
            other => panic!("expected Recovered, got {other:?}"),
        }
        assert!(!m.firing());
    }

    #[test]
    fn short_blip_does_not_fire() {
        let mut m = BurnRateMonitor::new(spec());
        for _ in 0..12 {
            m.observe(20, 20);
        }
        // One era at 50% error: fast window (3 eras) averages burn 10/3
        // < 4, slow window far below 2.
        assert_eq!(m.observe(10, 20), None);
        for _ in 0..10 {
            assert_eq!(m.observe(20, 20), None);
        }
        assert!(!m.firing());
    }

    #[test]
    fn cannot_fire_before_fast_window_fills() {
        let mut m = BurnRateMonitor::new(spec());
        assert_eq!(m.observe(0, 2), None, "one sample is not an alert");
        assert_eq!(m.observe(0, 2), None);
        assert!(matches!(m.observe(0, 2), Some(SloTransition::Fired { .. })));
    }

    #[test]
    fn zero_total_eras_are_neutral() {
        let mut m = BurnRateMonitor::new(spec());
        for _ in 0..20 {
            assert_eq!(m.observe(0, 0), None);
        }
        assert_eq!(m.burn_over(12), 0.0);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(SloSpec {
            objective: 1.0,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(SloSpec {
            objective: 0.0,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(SloSpec {
            fast_window: 0,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(SloSpec {
            slow_window: 2,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(SloSpec {
            fast_threshold: 1.0,
            ..spec()
        }
        .validate()
        .is_err());
        assert!(SloSpec::availability().validate().is_ok());
        assert!(SloSpec::latency().validate().is_ok());
    }
}
