//! Span timers: scoped wall-clock measurements with nesting depth.
//!
//! A [`Timer`] is a pre-resolved handle over one histogram (elapsed
//! nanoseconds); [`Timer::start`] opens a [`Span`] guard that records on
//! drop. Spans track a shared nesting depth so a run report can tell
//! phase-level spans (level 0/1) from inner hot-loop spans; the depth is
//! a plain counter, so even out-of-order guard drops (moved guards,
//! early `drop()`) return it to zero.
//!
//! Wall-clock readings never enter the event log or the simulation, so
//! spans cannot perturb seed determinism.

use crate::metrics::Hist;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A reusable span timer bound to one histogram. Cheap to clone and store
/// on the instrumented struct; inert when resolved from a disabled hub.
#[derive(Debug, Clone, Default)]
pub struct Timer {
    hist: Hist,
    depth: Option<Arc<AtomicUsize>>,
}

impl Timer {
    pub(crate) fn new(hist: Hist, depth: Arc<AtomicUsize>) -> Self {
        if hist.core.is_none() {
            return Timer::default(); // disabled hub: fully inert
        }
        Timer {
            hist,
            depth: Some(depth),
        }
    }

    /// Opens a measurement; the returned guard records elapsed nanoseconds
    /// into the timer's histogram when dropped.
    #[inline]
    pub fn start(&self) -> Span {
        match (&self.hist.core, &self.depth) {
            (Some(_), Some(depth)) => {
                let level = depth.fetch_add(1, Ordering::Relaxed);
                Span {
                    inner: Some(SpanInner {
                        start: Instant::now(),
                        hist: self.hist.clone(),
                        depth: depth.clone(),
                        level,
                    }),
                }
            }
            _ => Span { inner: None },
        }
    }
}

#[derive(Debug)]
struct SpanInner {
    start: Instant,
    hist: Hist,
    depth: Arc<AtomicUsize>,
    level: usize,
}

/// An open span; records its elapsed wall time on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records ~0"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Whether this span actually measures (false for no-op hubs).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Nesting level at open time (0 = outermost), `None` when inert.
    pub fn level(&self) -> Option<usize> {
        self.inner.as_ref().map(|i| i.level)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ns = inner.start.elapsed().as_nanos();
            inner.hist.record(ns.min(u64::MAX as u128) as u64);
            inner.depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Obs, ObsConfig};

    #[test]
    fn span_records_elapsed_time_into_histogram() {
        let obs = Obs::new(ObsConfig::default());
        let timer = obs.timer("acm.test.span.work_ns");
        for _ in 0..3 {
            let _s = timer.start();
            std::hint::black_box((0..100).sum::<u64>());
        }
        let snap = obs.histogram("acm.test.span.work_ns").snapshot();
        assert_eq!(snap.count, 3);
        assert!(snap.sum > 0, "wall clock must have advanced");
        assert!(snap.max >= snap.min);
    }

    #[test]
    fn nesting_levels_and_depth() {
        let obs = Obs::new(ObsConfig::default());
        assert_eq!(obs.span_depth(), 0);
        let outer = obs.span("acm.test.span.outer_ns");
        assert_eq!(outer.level(), Some(0));
        assert_eq!(obs.span_depth(), 1);
        {
            let inner = obs.span("acm.test.span.inner_ns");
            assert_eq!(inner.level(), Some(1));
            assert_eq!(obs.span_depth(), 2);
        }
        assert_eq!(obs.span_depth(), 1);
        drop(outer);
        assert_eq!(obs.span_depth(), 0);
    }

    #[test]
    fn out_of_order_drop_still_returns_depth_to_zero() {
        let obs = Obs::new(ObsConfig::default());
        let a = obs.span("acm.test.span.a_ns");
        let b = obs.span("acm.test.span.b_ns");
        assert_eq!((a.level(), b.level()), (Some(0), Some(1)));
        // Drop the outer guard first (moved-guard scenario).
        drop(a);
        assert_eq!(obs.span_depth(), 1);
        drop(b);
        assert_eq!(obs.span_depth(), 0);
        // Both histograms recorded exactly once.
        assert_eq!(obs.histogram("acm.test.span.a_ns").snapshot().count, 1);
        assert_eq!(obs.histogram("acm.test.span.b_ns").snapshot().count, 1);
    }

    #[test]
    fn noop_spans_are_inert() {
        let obs = Obs::noop();
        let timer = obs.timer("acm.test.span.noop_ns");
        let s = timer.start();
        assert!(!s.is_active());
        assert_eq!(s.level(), None);
        assert_eq!(obs.span_depth(), 0);
        drop(s);
        assert_eq!(obs.span_depth(), 0);
    }
}
