//! Structured, seed-deterministic decision log.
//!
//! Every consequential control decision (rejuvenation triggered, STANDBY
//! activation, leader change, plan install, EWMA update, …) is recorded
//! as an [`EventRecord`]: a monotonically increasing sequence number, the
//! *simulated* timestamp in microseconds, a static `kind` tag, and typed
//! key/value fields. Records carry no wall-clock readings, so for a given
//! seed the log is byte-identical across runs and machines — which is
//! what makes it usable as a regression artifact.
//!
//! ## Retention policy
//!
//! Storage is **per event kind**: each kind gets its own bounded store of
//! `capacity` records, split into a pinned *head* (the first `capacity/4`
//! records of that kind, kept forever) and a *tail* ring (the most recent
//! `capacity - capacity/4`, overwriting oldest). A long run can therefore
//! never let a chatty kind (e.g. `ewma.update`) evict another kind's
//! history, and even within one kind the earliest decisions — era-0
//! rejuvenations, the first plan install — survive arbitrarily long
//! floods. Overwritten records are counted in [`EventLog::dropped`].
//! Memory stays bounded because the set of kinds is small and closed
//! (each emitter uses a `&'static str` tag).
//!
//! Readers ([`EventLog::tail`], [`EventLog::to_jsonl`]) merge all kinds
//! back into one stream ordered by global sequence number. Capacity 0
//! makes the log inert (used by the no-op hub).

use crate::json::{push_escaped, push_f64, JsonObject};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// A typed event-field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (ids, counts, thresholds in integral units).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Float (fractions, seconds, EWMA estimates).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short label (policy/strategy names).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => push_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => push_escaped(out, v),
        }
    }
}

/// One recorded decision.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Monotonic sequence number (0-based, counts *all* events pushed,
    /// including ones since overwritten).
    pub seq: u64,
    /// Simulated time of the decision, in microseconds.
    pub t_us: u64,
    /// Static event tag, dot-namespaced (e.g. `rejuvenation.proactive`).
    pub kind: &'static str,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl EventRecord {
    /// The record as one JSON object (`{"seq":…,"t_us":…,"kind":…,…fields}`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("seq", self.seq)
            .field_u64("t_us", self.t_us)
            .field_str("kind", self.kind);
        for (k, v) in &self.fields {
            let mut raw = String::new();
            v.push_json(&mut raw);
            o.field_raw(k, &raw);
        }
        o.finish()
    }
}

/// One kind's bounded store: a pinned head (first records of the kind,
/// never evicted) plus a tail ring over the most recent ones.
#[derive(Debug, Default)]
struct KindStore {
    head: Vec<EventRecord>,
    tail: VecDeque<EventRecord>,
    dropped: u64,
}

#[derive(Debug, Default)]
struct Stores {
    kinds: BTreeMap<&'static str, KindStore>,
    seq: u64,
}

/// Bounded, per-kind retention store of [`EventRecord`]s (see the module
/// docs for the head/tail policy).
#[derive(Debug)]
pub struct EventLog {
    head_cap: usize,
    tail_cap: usize,
    stores: Mutex<Stores>,
}

impl EventLog {
    /// A log retaining up to `capacity` records **per event kind** — the
    /// first `capacity/4` pinned, the rest a most-recent ring (0 = record
    /// nothing).
    pub fn new(capacity: usize) -> Self {
        let head_cap = capacity / 4;
        EventLog {
            head_cap,
            tail_cap: capacity - head_cap,
            stores: Mutex::new(Stores::default()),
        }
    }

    /// Appends one record; once its kind's store is full the oldest
    /// *unpinned* record of that kind is evicted.
    pub fn push(&self, t_us: u64, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if self.head_cap + self.tail_cap == 0 {
            return;
        }
        let mut stores = self.stores.lock().unwrap();
        let seq = stores.seq;
        stores.seq += 1;
        let rec = EventRecord {
            seq,
            t_us,
            kind,
            fields,
        };
        let store = stores.kinds.entry(kind).or_default();
        if store.head.len() < self.head_cap {
            store.head.push(rec);
        } else {
            if store.tail.len() == self.tail_cap {
                store.tail.pop_front();
                store.dropped += 1;
            }
            store.tail.push_back(rec);
        }
    }

    /// All retained records across kinds, ordered by sequence number.
    fn merged(stores: &Stores) -> Vec<EventRecord> {
        let mut out: Vec<EventRecord> = stores
            .kinds
            .values()
            .flat_map(|s| s.head.iter().chain(s.tail.iter()).cloned())
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The most recent `n` retained records (by sequence number across
    /// all kinds), oldest first.
    pub fn tail(&self, n: usize) -> Vec<EventRecord> {
        let stores = self.stores.lock().unwrap();
        let mut all = Self::merged(&stores);
        let skip = all.len().saturating_sub(n);
        all.drain(..skip);
        all
    }

    /// Records currently retained (all kinds).
    pub fn len(&self) -> usize {
        let stores = self.stores.lock().unwrap();
        stores
            .kinds
            .values()
            .map(|s| s.head.len() + s.tail.len())
            .sum()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted after a kind's store filled (all kinds).
    pub fn dropped(&self) -> u64 {
        let stores = self.stores.lock().unwrap();
        stores.kinds.values().map(|s| s.dropped).sum()
    }

    /// Per-kind retention pressure: `(kind, retained, dropped)` rows in
    /// kind order. Shows which kinds are flooding their ring — and which
    /// history is silently thinning — without dumping the log.
    pub fn kind_stats(&self) -> Vec<(&'static str, usize, u64)> {
        let stores = self.stores.lock().unwrap();
        stores
            .kinds
            .iter()
            .map(|(kind, s)| (*kind, s.head.len() + s.tail.len(), s.dropped))
            .collect()
    }

    /// All retained records as JSON Lines, ordered by sequence number
    /// (empty string when nothing is retained).
    pub fn to_jsonl(&self) -> String {
        let stores = self.stores.lock().unwrap();
        let mut out = String::new();
        for rec in Self::merged(&stores) {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let log = EventLog::new(8);
        log.push(10, "a", vec![("x", Value::from(1u64))]);
        log.push(20, "b", vec![("y", Value::from(2.5))]);
        let all = log.tail(10);
        assert_eq!(all.len(), 2);
        assert_eq!((all[0].seq, all[0].t_us, all[0].kind), (0, 10, "a"));
        assert_eq!((all[1].seq, all[1].t_us, all[1].kind), (1, 20, "b"));
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_dropped() {
        let log = EventLog::new(3);
        for i in 0..5u64 {
            log.push(i * 100, "tick", vec![("i", Value::from(i))]);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let tail = log.tail(3);
        assert_eq!(tail[0].seq, 2, "oldest retained is the 3rd pushed");
        assert_eq!(tail[2].seq, 4);
        // tail(n) with n < len returns the most recent n, oldest first.
        let last_two = log.tail(2);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[0].seq, 3);
        assert_eq!(last_two[1].seq, 4);
    }

    #[test]
    fn chatty_kind_cannot_evict_another_kinds_history() {
        // Capacity 8 per kind: head 2 pinned + tail ring 6.
        let log = EventLog::new(8);
        log.push(
            0,
            "rejuvenation.proactive",
            vec![("era", Value::from(0u64))],
        );
        for i in 0..100u64 {
            log.push(10 + i, "ewma.update", vec![("i", Value::from(i))]);
        }
        let all = log.tail(usize::MAX);
        // The lone rejuvenation record survives a 100-event flood of
        // another kind (the old single-ring design evicted it).
        assert!(
            all.iter()
                .any(|r| r.kind == "rejuvenation.proactive" && r.seq == 0),
            "era-0 decision must survive the flood"
        );
        // Within the chatty kind: first 2 pinned + most recent 6.
        let ewma: Vec<u64> = all
            .iter()
            .filter(|r| r.kind == "ewma.update")
            .map(|r| r.seq)
            .collect();
        assert_eq!(ewma, vec![1, 2, 95, 96, 97, 98, 99, 100]);
        assert_eq!(log.len(), 9);
        assert_eq!(log.dropped(), 92);
        // Retention pressure is visible per kind, in kind order.
        assert_eq!(
            log.kind_stats(),
            vec![("ewma.update", 8, 92), ("rejuvenation.proactive", 1, 0)]
        );
    }

    #[test]
    fn merged_views_are_ordered_by_sequence_across_kinds() {
        let log = EventLog::new(8);
        for i in 0..6u64 {
            let kind = if i % 2 == 0 { "a" } else { "b" };
            log.push(i, kind, vec![]);
        }
        let seqs: Vec<u64> = log.tail(usize::MAX).iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        let jsonl = log.to_jsonl();
        let first_lines: Vec<&str> = jsonl.lines().take(2).collect();
        assert!(first_lines[0].starts_with("{\"seq\":0,"));
        assert!(first_lines[1].starts_with("{\"seq\":1,"));
        // tail(n) still means "most recent n" in the merged order.
        let last = log.tail(2);
        assert_eq!((last[0].seq, last[1].seq), (4, 5));
    }

    #[test]
    fn zero_capacity_is_inert() {
        let log = EventLog::new(0);
        log.push(1, "ignored", vec![]);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn jsonl_serialization_covers_all_value_types() {
        let log = EventLog::new(4);
        log.push(
            1_500_000,
            "plan.install",
            vec![
                ("era", Value::from(12u64)),
                ("delta", Value::I64(-3)),
                ("frac", Value::from(0.6)),
                ("changed", Value::from(true)),
                ("policy", Value::from("oracle \"exact\"")),
            ],
        );
        let line = log.to_jsonl();
        assert_eq!(
            line,
            "{\"seq\":0,\"t_us\":1500000,\"kind\":\"plan.install\",\"era\":12,\
             \"delta\":-3,\"frac\":0.6,\"changed\":true,\
             \"policy\":\"oracle \\\"exact\\\"\"}\n"
        );
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let log = EventLog::new(2);
        log.push(0, "e", vec![("v", Value::F64(f64::NAN))]);
        assert!(log.to_jsonl().contains("\"v\":null"));
    }

    #[test]
    fn log_is_deterministic_for_identical_pushes() {
        let mk = || {
            let log = EventLog::new(16);
            for i in 0..10u64 {
                log.push(
                    i * 7,
                    "tick",
                    vec![("i", Value::from(i)), ("f", Value::from(i as f64 / 3.0))],
                );
            }
            log.to_jsonl()
        };
        assert_eq!(mk(), mk());
    }
}
