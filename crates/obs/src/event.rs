//! Structured, seed-deterministic decision log.
//!
//! Every consequential control decision (rejuvenation triggered, STANDBY
//! activation, leader change, plan install, EWMA update, …) is recorded
//! as an [`EventRecord`]: a monotonically increasing sequence number, the
//! *simulated* timestamp in microseconds, a static `kind` tag, and typed
//! key/value fields. Records carry no wall-clock readings, so for a given
//! seed the log is byte-identical across runs and machines — which is
//! what makes it usable as a regression artifact.
//!
//! Storage is a fixed-capacity ring: once full, the oldest records are
//! overwritten and counted in [`EventLog::dropped`]. Capacity 0 makes the
//! log inert (used by the no-op hub).

use crate::json::{push_escaped, push_f64, JsonObject};
use std::collections::VecDeque;
use std::sync::Mutex;

/// A typed event-field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (ids, counts, thresholds in integral units).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Float (fractions, seconds, EWMA estimates).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short label (policy/strategy names).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => push_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => push_escaped(out, v),
        }
    }
}

/// One recorded decision.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Monotonic sequence number (0-based, counts *all* events pushed,
    /// including ones since overwritten).
    pub seq: u64,
    /// Simulated time of the decision, in microseconds.
    pub t_us: u64,
    /// Static event tag, dot-namespaced (e.g. `rejuvenation.proactive`).
    pub kind: &'static str,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl EventRecord {
    /// The record as one JSON object (`{"seq":…,"t_us":…,"kind":…,…fields}`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("seq", self.seq)
            .field_u64("t_us", self.t_us)
            .field_str("kind", self.kind);
        for (k, v) in &self.fields {
            let mut raw = String::new();
            v.push_json(&mut raw);
            o.field_raw(k, &raw);
        }
        o.finish()
    }
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<EventRecord>,
    seq: u64,
    dropped: u64,
}

/// Fixed-capacity ring buffer of [`EventRecord`]s.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl EventLog {
    /// A log retaining up to `capacity` records (0 = record nothing).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity,
            ring: Mutex::new(Ring {
                records: VecDeque::with_capacity(capacity.min(1024)),
                seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Appends one record, evicting the oldest when full.
    pub fn push(&self, t_us: u64, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        let seq = ring.seq;
        ring.seq += 1;
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(EventRecord {
            seq,
            t_us,
            kind,
            fields,
        });
    }

    /// The most recent `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<EventRecord> {
        let ring = self.ring.lock().unwrap();
        let skip = ring.records.len().saturating_sub(n);
        ring.records.iter().skip(skip).cloned().collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// All retained records as JSON Lines, oldest first (empty string when
    /// nothing is retained).
    pub fn to_jsonl(&self) -> String {
        let ring = self.ring.lock().unwrap();
        let mut out = String::new();
        for rec in &ring.records {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let log = EventLog::new(8);
        log.push(10, "a", vec![("x", Value::from(1u64))]);
        log.push(20, "b", vec![("y", Value::from(2.5))]);
        let all = log.tail(10);
        assert_eq!(all.len(), 2);
        assert_eq!((all[0].seq, all[0].t_us, all[0].kind), (0, 10, "a"));
        assert_eq!((all[1].seq, all[1].t_us, all[1].kind), (1, 20, "b"));
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_dropped() {
        let log = EventLog::new(3);
        for i in 0..5u64 {
            log.push(i * 100, "tick", vec![("i", Value::from(i))]);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let tail = log.tail(3);
        assert_eq!(tail[0].seq, 2, "oldest retained is the 3rd pushed");
        assert_eq!(tail[2].seq, 4);
        // tail(n) with n < len returns the most recent n, oldest first.
        let last_two = log.tail(2);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[0].seq, 3);
        assert_eq!(last_two[1].seq, 4);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let log = EventLog::new(0);
        log.push(1, "ignored", vec![]);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn jsonl_serialization_covers_all_value_types() {
        let log = EventLog::new(4);
        log.push(
            1_500_000,
            "plan.install",
            vec![
                ("era", Value::from(12u64)),
                ("delta", Value::I64(-3)),
                ("frac", Value::from(0.6)),
                ("changed", Value::from(true)),
                ("policy", Value::from("oracle \"exact\"")),
            ],
        );
        let line = log.to_jsonl();
        assert_eq!(
            line,
            "{\"seq\":0,\"t_us\":1500000,\"kind\":\"plan.install\",\"era\":12,\
             \"delta\":-3,\"frac\":0.6,\"changed\":true,\
             \"policy\":\"oracle \\\"exact\\\"\"}\n"
        );
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let log = EventLog::new(2);
        log.push(0, "e", vec![("v", Value::F64(f64::NAN))]);
        assert!(log.to_jsonl().contains("\"v\":null"));
    }

    #[test]
    fn log_is_deterministic_for_identical_pushes() {
        let mk = || {
            let log = EventLog::new(16);
            for i in 0..10u64 {
                log.push(
                    i * 7,
                    "tick",
                    vec![("i", Value::from(i)), ("f", Value::from(i as f64 / 3.0))],
                );
            }
            log.to_jsonl()
        };
        assert_eq!(mk(), mk());
    }
}
