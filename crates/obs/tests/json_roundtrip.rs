//! Property test: every `EventRecord::to_json` line is valid JSON and
//! string payloads survive the escape/parse round trip.
//!
//! The workspace writes all of its JSON by hand (the vendored serde is
//! marker-only), so nothing but these tests stands between a control
//! character in a region name and a corrupt JSONL decision log. The
//! validator below is an intentionally minimal recursive-descent JSON
//! parser — independent of `acm_obs::json`, so a shared bug cannot
//! vacuously pass.

use acm_obs::{EventRecord, Value};
use proptest::prelude::*;

/// Parsed JSON value, just enough structure for the assertions.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or_else(|| self.error("unexpected end"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump()? == b {
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        self.skip_ws();
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing garbage"));
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.error(&format!("bad literal, wanted {text}")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Obj(out)),
                _ => return Err(self.error("expected , or }")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Arr(out)),
                _ => return Err(self.error("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.bump()? as char)
                                .to_digit(16)
                                .ok_or_else(|| self.error("bad \\u digit"))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs never appear in our output (we
                        // only \u-escape control chars and DEL); reject
                        // rather than decode them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| self.error("surrogate in \\u escape"))?;
                        out.push(c);
                    }
                    _ => return Err(self.error("bad escape")),
                },
                b if b < 0x20 => return Err(self.error("raw control char in string")),
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: the input came from a &str, so the
                    // continuation bytes are guaranteed well-formed.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.error("bad utf-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

fn parse(s: &str) -> Result<Json, String> {
    Parser::new(s).parse()
}

/// Strategy: arbitrary (possibly nasty) unicode strings, biased toward
/// the characters the escaper has to handle: C0 controls, DEL, quotes,
/// backslashes, multi-byte code points.
fn nasty_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x500, 0..24).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                // Spread the draw over the interesting ranges.
                0x00..=0x21 => char::from_u32(c).unwrap(), // controls, space, !
                0x22 => '"',
                0x23 => '\\',
                0x24 => '\u{7f}',
                0x25..=0x2f => char::from_u32(0x1f600 + c).unwrap(), // emoji
                0x30..=0x4f => char::from_u32(0x3b1 + (c - 0x30)).unwrap(), // greek
                c => char::from_u32(c).unwrap(),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn event_records_serialize_to_parseable_json(
        seq in 0u64..u64::MAX,
        t_us in 0u64..u64::MAX,
        s in nasty_string(),
        u in 0u64..u64::MAX,
        i in i64::MIN..i64::MAX,
        f_bits in 0u64..u64::MAX,
        b in proptest::prelude::any::<bool>(),
    ) {
        let f = f64::from_bits(f_bits); // hits NaN/inf/subnormals too
        let rec = EventRecord {
            seq,
            t_us,
            kind: "test.kind",
            fields: vec![
                ("s", Value::Str(s.clone())),
                ("u", Value::U64(u)),
                ("i", Value::I64(i)),
                ("f", Value::F64(f)),
                ("b", Value::Bool(b)),
            ],
        };
        let line = rec.to_json();
        prop_assert!(!line.contains('\n'), "JSONL line must be newline-free");
        let parsed = parse(&line).map_err(|e| {
            proptest::TestCaseError(format!("{e}\nline: {line}"))
        })?;
        let Json::Obj(fields) = parsed else {
            return Err(proptest::TestCaseError("not an object".into()));
        };
        let get = |k: &str| {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        // Integers round-trip through the f64 parse only up to 2^53, so
        // compare the raw token text for seq/u/i instead.
        prop_assert!(line.contains(&format!("\"seq\":{seq}")));
        prop_assert!(line.contains(&format!("\"u\":{u}")));
        prop_assert!(line.contains(&format!("\"i\":{i}")));
        // The nasty string survives the escape/parse round trip exactly.
        prop_assert_eq!(get("s"), Some(Json::Str(s)));
        prop_assert_eq!(get("b"), Some(Json::Bool(b)));
        if f.is_finite() {
            match get("f") {
                Some(Json::Num(parsed_f)) => {
                    prop_assert_eq!(parsed_f, f, "shortest round-trip failed")
                }
                other => return Err(proptest::TestCaseError(format!("f: {other:?}"))),
            }
        } else {
            prop_assert_eq!(get("f"), Some(Json::Null), "non-finite must be null");
        }
    }
}

#[test]
fn validator_rejects_malformed_json() {
    assert!(parse("{").is_err());
    assert!(parse(r#"{"a":1,}"#).is_err());
    assert!(parse("{\"a\":\"\u{1}\"}").is_err(), "raw control char");
    assert!(parse(r#"{"a":01e}"#).is_err());
    assert!(parse(r#"{"a":1} extra"#).is_err());
    assert!(parse(r#"{"a":"\q"}"#).is_err(), "bad escape");
}

#[test]
fn validator_accepts_the_shapes_the_exporters_emit() {
    let v = parse(r#"{"seq":0,"kind":"plan.install","old":[0.5,0.5],"ok":true,"x":null}"#)
        .expect("valid line");
    let Json::Obj(fields) = v else {
        panic!("not an object")
    };
    assert_eq!(fields.len(), 5);
    assert_eq!(fields[3], ("ok".into(), Json::Bool(true)));
}
