//! Open-loop arrival traces.
//!
//! The closed-loop generator ([`crate::generator`]) is the paper-faithful
//! client model; the benches additionally need *open-loop* traffic — fixed
//! request-per-second profiles that do not react to the system — to stress
//! specific rates reproducibly. [`RateProfile`] describes λ(t);
//! [`ArrivalTrace`] materialises Poisson arrivals from it up front, and
//! [`OpenLoopArrivals`] generates the same process incrementally, one era
//! window at a time, so sharded mega-scale runs never hold a whole
//! horizon of arrivals in memory (use [`OpenLoopArrivals::pre_split`] for
//! one deterministic stream per shard).

use acm_sim::rng::SimRng;
use acm_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// A deterministic request-rate profile λ(t), req/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// Constant rate.
    Constant(f64),
    /// Piecewise-constant steps: `(start_instant, rate)` pairs, sorted by
    /// instant; rate 0 before the first step.
    Steps(Vec<(SimTime, f64)>),
    /// Sinusoidal diurnal pattern: `base + amplitude · sin(2πt / period)`,
    /// clamped at zero.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Swing amplitude.
        amplitude: f64,
        /// Oscillation period.
        period: Duration,
    },
    /// Flash-crowd pattern: `base` rate with a burst to `peak` for the
    /// first `burst_len` of every `period` — the square-wave counterpart
    /// of `Diurnal` for stressing plan reaction to abrupt load swings.
    Burst {
        /// Rate outside the bursts.
        base: f64,
        /// Rate inside the bursts.
        peak: f64,
        /// Interval between burst starts.
        period: Duration,
        /// Burst duration (≤ `period`).
        burst_len: Duration,
    },
}

impl RateProfile {
    /// λ at the given instant (always ≥ 0).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self {
            RateProfile::Constant(r) => r.max(0.0),
            RateProfile::Steps(steps) => steps
                .iter()
                .take_while(|(at, _)| *at <= t)
                .last()
                .map_or(0.0, |(_, r)| r.max(0.0)),
            RateProfile::Diurnal {
                base,
                amplitude,
                period,
            } => {
                let phase = t.as_secs_f64() / period.as_secs_f64();
                (base + amplitude * (2.0 * std::f64::consts::PI * phase).sin()).max(0.0)
            }
            RateProfile::Burst {
                base,
                peak,
                period,
                burst_len,
            } => {
                let into_period = t.as_micros() % period.as_micros().max(1);
                if into_period < burst_len.as_micros() {
                    peak.max(0.0)
                } else {
                    base.max(0.0)
                }
            }
        }
    }

    /// The profile's maximum rate — the thinning envelope for Poisson
    /// generation.
    pub fn peak_rate(&self) -> f64 {
        match self {
            RateProfile::Constant(r) => r.max(0.0),
            RateProfile::Steps(steps) => steps.iter().map(|(_, r)| *r).fold(0.0, f64::max),
            RateProfile::Diurnal {
                base, amplitude, ..
            } => (base + amplitude).max(0.0),
            RateProfile::Burst { base, peak, .. } => base.max(*peak).max(0.0),
        }
    }

    /// Expected number of arrivals in `[from, from + window)` (trapezoidal
    /// integration at 1-second resolution; exact for constant/step rates on
    /// aligned windows).
    pub fn expected_arrivals(&self, from: SimTime, window: Duration) -> f64 {
        let secs = window.as_secs_f64();
        let steps = (secs.ceil() as usize).max(1);
        let dt = secs / steps as f64;
        let mut acc = 0.0;
        for k in 0..steps {
            let t0 = from + Duration::from_secs_f64(k as f64 * dt);
            let t1 = from + Duration::from_secs_f64((k as f64 + 1.0) * dt);
            acc += 0.5 * (self.rate_at(t0) + self.rate_at(t1)) * dt;
        }
        acc
    }

    /// Validates the profile.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            RateProfile::Constant(r) => {
                if !r.is_finite() || *r < 0.0 {
                    return Err("constant rate must be finite and non-negative".into());
                }
            }
            RateProfile::Steps(steps) => {
                if steps.windows(2).any(|w| w[0].0 > w[1].0) {
                    return Err("steps must be sorted by instant".into());
                }
                if steps.iter().any(|(_, r)| !r.is_finite() || *r < 0.0) {
                    return Err("step rates must be finite and non-negative".into());
                }
            }
            RateProfile::Diurnal {
                base,
                amplitude,
                period,
            } => {
                if !base.is_finite() || *base < 0.0 || !amplitude.is_finite() || *amplitude < 0.0 {
                    return Err("diurnal parameters must be non-negative".into());
                }
                if period.is_zero() {
                    return Err("diurnal period must be positive".into());
                }
            }
            RateProfile::Burst {
                base,
                peak,
                period,
                burst_len,
            } => {
                if !base.is_finite() || *base < 0.0 || !peak.is_finite() || *peak < 0.0 {
                    return Err("burst rates must be finite and non-negative".into());
                }
                if period.is_zero() {
                    return Err("burst period must be positive".into());
                }
                if burst_len > period {
                    return Err("burst length cannot exceed the period".into());
                }
            }
        }
        Ok(())
    }
}

/// A materialised sequence of arrival instants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    arrivals: Vec<SimTime>,
}

impl ArrivalTrace {
    /// Generates Poisson arrivals following `profile` over `[0, horizon)`
    /// by thinning against the profile's peak rate.
    pub fn generate(profile: &RateProfile, horizon: Duration, rng: &mut SimRng) -> Self {
        profile.validate().expect("invalid rate profile");
        // Peak rate for the thinning envelope.
        let peak = profile.peak_rate();
        let mut arrivals = Vec::new();
        if peak <= 0.0 {
            return ArrivalTrace { arrivals };
        }
        let mut t = 0.0;
        let horizon_s = horizon.as_secs_f64();
        loop {
            t += rng.exponential(1.0 / peak);
            if t >= horizon_s {
                break;
            }
            let at = SimTime::from_secs_f64(t);
            // Thin: accept with probability λ(t)/peak.
            if rng.bernoulli(profile.rate_at(at) / peak) {
                arrivals.push(at);
            }
        }
        ArrivalTrace { arrivals }
    }

    /// The arrival instants, ascending.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when no arrivals were generated.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrivals inside `[from, to)`.
    pub fn count_between(&self, from: SimTime, to: SimTime) -> usize {
        let lo = self.arrivals.partition_point(|t| *t < from);
        let hi = self.arrivals.partition_point(|t| *t < to);
        hi - lo
    }
}

/// Incremental open-loop Poisson generator: the same thinned process as
/// [`ArrivalTrace::generate`], produced one window at a time instead of a
/// whole horizon up front.
///
/// The draw sequence depends only on how far the candidate cursor has
/// advanced, never on where the window boundaries fall, so any contiguous
/// partition of `[0, horizon)` into windows yields byte-identical
/// arrivals — including the single-window partition, which reproduces
/// [`ArrivalTrace::generate`] exactly. That property is what lets the
/// era-sharded simulator pull one era of arrivals per barrier interval
/// and still match an unsharded run.
#[derive(Debug, Clone)]
pub struct OpenLoopArrivals {
    profile: RateProfile,
    peak: f64,
    rng: SimRng,
    /// Next candidate instant of the constant-rate envelope process,
    /// seconds (`∞` for a zero-rate profile).
    next_s: f64,
}

impl OpenLoopArrivals {
    /// Creates a generator owning its RNG stream. Panics on an invalid
    /// profile.
    pub fn new(profile: RateProfile, mut rng: SimRng) -> Self {
        profile.validate().expect("invalid rate profile");
        let peak = profile.peak_rate();
        let next_s = if peak > 0.0 {
            rng.exponential(1.0 / peak)
        } else {
            f64::INFINITY
        };
        OpenLoopArrivals {
            profile,
            peak,
            rng,
            next_s,
        }
    }

    /// One generator per shard, RNG streams split off `rng` in shard-index
    /// order — the pre-split discipline that keeps sharded arrival
    /// generation independent of thread width and of every other shard's
    /// draws.
    pub fn pre_split(profile: &RateProfile, shards: usize, rng: &mut SimRng) -> Vec<Self> {
        (0..shards)
            .map(|_| OpenLoopArrivals::new(profile.clone(), rng.split()))
            .collect()
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &RateProfile {
        &self.profile
    }

    /// Clears `out` and fills it with the arrivals in `[from, to)`,
    /// reusing the buffer's allocation across eras. Windows must be
    /// consumed in ascending, non-overlapping order (candidates are
    /// generated once and never rewound); arrivals falling into a skipped
    /// gap are dropped.
    pub fn fill_window(&mut self, from: SimTime, to: SimTime, out: &mut Vec<SimTime>) {
        out.clear();
        let from_s = from.as_secs_f64();
        let to_s = to.as_secs_f64();
        while self.next_s < to_s {
            let cand = self.next_s;
            let at = SimTime::from_secs_f64(cand);
            if self.rng.bernoulli(self.profile.rate_at(at) / self.peak) && cand >= from_s {
                out.push(at);
            }
            self.next_s = cand + self.rng.exponential(1.0 / self.peak);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_profile_rate_and_expectation() {
        let p = RateProfile::Constant(12.0);
        assert_eq!(p.rate_at(t(0)), 12.0);
        assert_eq!(p.rate_at(t(999)), 12.0);
        let e = p.expected_arrivals(t(0), Duration::from_secs(10));
        assert!((e - 120.0).abs() < 1e-9);
    }

    #[test]
    fn step_profile_switches() {
        let p = RateProfile::Steps(vec![(t(0), 5.0), (t(100), 20.0)]);
        assert_eq!(p.rate_at(t(50)), 5.0);
        assert_eq!(p.rate_at(t(100)), 20.0);
        assert_eq!(p.rate_at(t(150)), 20.0);
        // Rate before the first step is zero.
        let q = RateProfile::Steps(vec![(t(10), 5.0)]);
        assert_eq!(q.rate_at(t(5)), 0.0);
    }

    #[test]
    fn diurnal_profile_oscillates_and_clamps() {
        let p = RateProfile::Diurnal {
            base: 10.0,
            amplitude: 15.0, // dips below zero -> clamped
            period: Duration::from_secs(100),
        };
        assert!((p.rate_at(t(25)) - 25.0).abs() < 1e-9); // peak at quarter period
        assert_eq!(p.rate_at(t(75)), 0.0); // clamped trough
    }

    #[test]
    fn trace_count_matches_expectation() {
        let p = RateProfile::Constant(50.0);
        let mut rng = SimRng::new(1);
        let trace = ArrivalTrace::generate(&p, Duration::from_secs(200), &mut rng);
        let expect = 50.0 * 200.0;
        let got = trace.len() as f64;
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt(),
            "{got} arrivals vs expected {expect}"
        );
        // Sorted ascending.
        assert!(trace.arrivals().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn thinning_respects_step_rates() {
        let p = RateProfile::Steps(vec![(t(0), 10.0), (t(100), 40.0)]);
        let mut rng = SimRng::new(2);
        let trace = ArrivalTrace::generate(&p, Duration::from_secs(200), &mut rng);
        let low = trace.count_between(t(0), t(100)) as f64;
        let high = trace.count_between(t(100), t(200)) as f64;
        assert!((low - 1000.0).abs() < 150.0, "low period {low}");
        assert!((high - 4000.0).abs() < 300.0, "high period {high}");
    }

    #[test]
    fn zero_rate_trace_is_empty() {
        let p = RateProfile::Constant(0.0);
        let mut rng = SimRng::new(3);
        let trace = ArrivalTrace::generate(&p, Duration::from_secs(100), &mut rng);
        assert!(trace.is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = RateProfile::Constant(5.0);
        let a = ArrivalTrace::generate(&p, Duration::from_secs(50), &mut SimRng::new(4));
        let b = ArrivalTrace::generate(&p, Duration::from_secs(50), &mut SimRng::new(4));
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert!(RateProfile::Constant(-1.0).validate().is_err());
        assert!(RateProfile::Steps(vec![(t(10), 1.0), (t(5), 1.0)])
            .validate()
            .is_err());
        assert!(RateProfile::Diurnal {
            base: 1.0,
            amplitude: 1.0,
            period: Duration::ZERO
        }
        .validate()
        .is_err());
        assert!(RateProfile::Burst {
            base: 1.0,
            peak: 10.0,
            period: Duration::from_secs(10),
            burst_len: Duration::from_secs(20),
        }
        .validate()
        .is_err());
        assert!(RateProfile::Burst {
            base: 1.0,
            peak: -2.0,
            period: Duration::from_secs(10),
            burst_len: Duration::from_secs(1),
        }
        .validate()
        .is_err());
    }

    #[test]
    fn burst_profile_is_a_square_wave() {
        let p = RateProfile::Burst {
            base: 5.0,
            peak: 50.0,
            period: Duration::from_secs(60),
            burst_len: Duration::from_secs(10),
        };
        assert_eq!(p.rate_at(t(0)), 50.0);
        assert_eq!(p.rate_at(t(9)), 50.0);
        assert_eq!(p.rate_at(t(10)), 5.0);
        assert_eq!(p.rate_at(t(59)), 5.0);
        assert_eq!(p.rate_at(t(60)), 50.0); // next period's burst
        assert_eq!(p.peak_rate(), 50.0);
    }

    #[test]
    fn burst_trace_concentrates_arrivals_in_bursts() {
        let p = RateProfile::Burst {
            base: 2.0,
            peak: 80.0,
            period: Duration::from_secs(100),
            burst_len: Duration::from_secs(10),
        };
        let mut rng = SimRng::new(21);
        let trace = ArrivalTrace::generate(&p, Duration::from_secs(100), &mut rng);
        let burst = trace.count_between(t(0), t(10)) as f64;
        let quiet = trace.count_between(t(10), t(100)) as f64;
        assert!((burst - 800.0).abs() < 150.0, "burst window {burst}");
        assert!((quiet - 180.0).abs() < 70.0, "quiet window {quiet}");
    }

    #[test]
    fn open_loop_windows_reproduce_the_materialised_trace() {
        let p = RateProfile::Burst {
            base: 10.0,
            peak: 60.0,
            period: Duration::from_secs(30),
            burst_len: Duration::from_secs(5),
        };
        let whole = ArrivalTrace::generate(&p, Duration::from_secs(120), &mut SimRng::new(9));
        // The same stream pulled era by era must concatenate to the same
        // arrivals, wherever the window boundaries fall.
        for windows in [&[120u64][..], &[30, 30, 30, 30], &[7, 50, 13, 50]] {
            let mut gen = OpenLoopArrivals::new(p.clone(), SimRng::new(9));
            let mut got = Vec::new();
            let mut buf = Vec::new();
            let mut from = t(0);
            for w in windows {
                let to = from + Duration::from_secs(*w);
                gen.fill_window(from, to, &mut buf);
                got.extend_from_slice(&buf);
                from = to;
            }
            assert_eq!(got, whole.arrivals(), "windows {windows:?}");
        }
    }

    #[test]
    fn pre_split_streams_are_deterministic_and_distinct() {
        let p = RateProfile::Constant(25.0);
        let mut shards_a = OpenLoopArrivals::pre_split(&p, 3, &mut SimRng::new(5));
        let mut shards_b = OpenLoopArrivals::pre_split(&p, 3, &mut SimRng::new(5));
        let mut all = Vec::new();
        for (a, b) in shards_a.iter_mut().zip(shards_b.iter_mut()) {
            let (mut wa, mut wb) = (Vec::new(), Vec::new());
            a.fill_window(t(0), t(50), &mut wa);
            b.fill_window(t(0), t(50), &mut wb);
            assert_eq!(wa, wb, "same parent seed, same per-shard stream");
            assert!(!wa.is_empty());
            all.push(wa);
        }
        assert_ne!(all[0], all[1], "shards draw from distinct streams");
    }

    #[test]
    fn zero_rate_open_loop_generator_is_empty() {
        let mut g = OpenLoopArrivals::new(RateProfile::Constant(0.0), SimRng::new(1));
        let mut buf = vec![t(1)]; // cleared by fill_window
        g.fill_window(t(0), t(1000), &mut buf);
        assert!(buf.is_empty());
    }
}
