//! Open-loop arrival traces.
//!
//! The closed-loop generator ([`crate::generator`]) is the paper-faithful
//! client model; the benches additionally need *open-loop* traffic — fixed
//! request-per-second profiles that do not react to the system — to stress
//! specific rates reproducibly. [`RateProfile`] describes λ(t);
//! [`ArrivalTrace`] materialises Poisson arrivals from it.

use acm_sim::rng::SimRng;
use acm_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// A deterministic request-rate profile λ(t), req/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// Constant rate.
    Constant(f64),
    /// Piecewise-constant steps: `(start_instant, rate)` pairs, sorted by
    /// instant; rate 0 before the first step.
    Steps(Vec<(SimTime, f64)>),
    /// Sinusoidal diurnal pattern: `base + amplitude · sin(2πt / period)`,
    /// clamped at zero.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Swing amplitude.
        amplitude: f64,
        /// Oscillation period.
        period: Duration,
    },
}

impl RateProfile {
    /// λ at the given instant (always ≥ 0).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self {
            RateProfile::Constant(r) => r.max(0.0),
            RateProfile::Steps(steps) => steps
                .iter()
                .take_while(|(at, _)| *at <= t)
                .last()
                .map_or(0.0, |(_, r)| r.max(0.0)),
            RateProfile::Diurnal {
                base,
                amplitude,
                period,
            } => {
                let phase = t.as_secs_f64() / period.as_secs_f64();
                (base + amplitude * (2.0 * std::f64::consts::PI * phase).sin()).max(0.0)
            }
        }
    }

    /// Expected number of arrivals in `[from, from + window)` (trapezoidal
    /// integration at 1-second resolution; exact for constant/step rates on
    /// aligned windows).
    pub fn expected_arrivals(&self, from: SimTime, window: Duration) -> f64 {
        let secs = window.as_secs_f64();
        let steps = (secs.ceil() as usize).max(1);
        let dt = secs / steps as f64;
        let mut acc = 0.0;
        for k in 0..steps {
            let t0 = from + Duration::from_secs_f64(k as f64 * dt);
            let t1 = from + Duration::from_secs_f64((k as f64 + 1.0) * dt);
            acc += 0.5 * (self.rate_at(t0) + self.rate_at(t1)) * dt;
        }
        acc
    }

    /// Validates the profile.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            RateProfile::Constant(r) => {
                if !r.is_finite() || *r < 0.0 {
                    return Err("constant rate must be finite and non-negative".into());
                }
            }
            RateProfile::Steps(steps) => {
                if steps.windows(2).any(|w| w[0].0 > w[1].0) {
                    return Err("steps must be sorted by instant".into());
                }
                if steps.iter().any(|(_, r)| !r.is_finite() || *r < 0.0) {
                    return Err("step rates must be finite and non-negative".into());
                }
            }
            RateProfile::Diurnal {
                base,
                amplitude,
                period,
            } => {
                if !base.is_finite() || *base < 0.0 || !amplitude.is_finite() || *amplitude < 0.0 {
                    return Err("diurnal parameters must be non-negative".into());
                }
                if period.is_zero() {
                    return Err("diurnal period must be positive".into());
                }
            }
        }
        Ok(())
    }
}

/// A materialised sequence of arrival instants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    arrivals: Vec<SimTime>,
}

impl ArrivalTrace {
    /// Generates Poisson arrivals following `profile` over `[0, horizon)`
    /// by thinning against the profile's peak rate.
    pub fn generate(profile: &RateProfile, horizon: Duration, rng: &mut SimRng) -> Self {
        profile.validate().expect("invalid rate profile");
        // Peak rate for the thinning envelope.
        let peak = match profile {
            RateProfile::Constant(r) => *r,
            RateProfile::Steps(steps) => steps.iter().map(|(_, r)| *r).fold(0.0, f64::max),
            RateProfile::Diurnal {
                base, amplitude, ..
            } => base + amplitude,
        };
        let mut arrivals = Vec::new();
        if peak <= 0.0 {
            return ArrivalTrace { arrivals };
        }
        let mut t = 0.0;
        let horizon_s = horizon.as_secs_f64();
        loop {
            t += rng.exponential(1.0 / peak);
            if t >= horizon_s {
                break;
            }
            let at = SimTime::from_secs_f64(t);
            // Thin: accept with probability λ(t)/peak.
            if rng.bernoulli(profile.rate_at(at) / peak) {
                arrivals.push(at);
            }
        }
        ArrivalTrace { arrivals }
    }

    /// The arrival instants, ascending.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when no arrivals were generated.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrivals inside `[from, to)`.
    pub fn count_between(&self, from: SimTime, to: SimTime) -> usize {
        let lo = self.arrivals.partition_point(|t| *t < from);
        let hi = self.arrivals.partition_point(|t| *t < to);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_profile_rate_and_expectation() {
        let p = RateProfile::Constant(12.0);
        assert_eq!(p.rate_at(t(0)), 12.0);
        assert_eq!(p.rate_at(t(999)), 12.0);
        let e = p.expected_arrivals(t(0), Duration::from_secs(10));
        assert!((e - 120.0).abs() < 1e-9);
    }

    #[test]
    fn step_profile_switches() {
        let p = RateProfile::Steps(vec![(t(0), 5.0), (t(100), 20.0)]);
        assert_eq!(p.rate_at(t(50)), 5.0);
        assert_eq!(p.rate_at(t(100)), 20.0);
        assert_eq!(p.rate_at(t(150)), 20.0);
        // Rate before the first step is zero.
        let q = RateProfile::Steps(vec![(t(10), 5.0)]);
        assert_eq!(q.rate_at(t(5)), 0.0);
    }

    #[test]
    fn diurnal_profile_oscillates_and_clamps() {
        let p = RateProfile::Diurnal {
            base: 10.0,
            amplitude: 15.0, // dips below zero -> clamped
            period: Duration::from_secs(100),
        };
        assert!((p.rate_at(t(25)) - 25.0).abs() < 1e-9); // peak at quarter period
        assert_eq!(p.rate_at(t(75)), 0.0); // clamped trough
    }

    #[test]
    fn trace_count_matches_expectation() {
        let p = RateProfile::Constant(50.0);
        let mut rng = SimRng::new(1);
        let trace = ArrivalTrace::generate(&p, Duration::from_secs(200), &mut rng);
        let expect = 50.0 * 200.0;
        let got = trace.len() as f64;
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt(),
            "{got} arrivals vs expected {expect}"
        );
        // Sorted ascending.
        assert!(trace.arrivals().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn thinning_respects_step_rates() {
        let p = RateProfile::Steps(vec![(t(0), 10.0), (t(100), 40.0)]);
        let mut rng = SimRng::new(2);
        let trace = ArrivalTrace::generate(&p, Duration::from_secs(200), &mut rng);
        let low = trace.count_between(t(0), t(100)) as f64;
        let high = trace.count_between(t(100), t(200)) as f64;
        assert!((low - 1000.0).abs() < 150.0, "low period {low}");
        assert!((high - 4000.0).abs() < 300.0, "high period {high}");
    }

    #[test]
    fn zero_rate_trace_is_empty() {
        let p = RateProfile::Constant(0.0);
        let mut rng = SimRng::new(3);
        let trace = ArrivalTrace::generate(&p, Duration::from_secs(100), &mut rng);
        assert!(trace.is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = RateProfile::Constant(5.0);
        let a = ArrivalTrace::generate(&p, Duration::from_secs(50), &mut SimRng::new(4));
        let b = ArrivalTrace::generate(&p, Duration::from_secs(50), &mut SimRng::new(4));
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert!(RateProfile::Constant(-1.0).validate().is_err());
        assert!(RateProfile::Steps(vec![(t(10), 1.0), (t(5), 1.0)])
            .validate()
            .is_err());
        assert!(RateProfile::Diurnal {
            base: 1.0,
            amplitude: 1.0,
            period: Duration::ZERO
        }
        .validate()
        .is_err());
    }
}
