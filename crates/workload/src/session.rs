//! TPC-W session state machine.
//!
//! TPC-W clients do not draw interactions i.i.d. — they walk sessions
//! (home → search → product → cart → buy …) whose transition structure the
//! spec fixes per mix. We model a first-order Markov chain over the five
//! interaction classes of [`crate::mix`], with per-mix transition rows
//! calibrated so the chain's stationary distribution matches the mix's
//! class weights, plus a geometric session length. The event-driven
//! examples use this; the era-grain generator only needs the stationary
//! rates, which is why [`TpcwMix::class_weights`] and the chain agree.

use crate::mix::{InteractionClass, TpcwMix};
use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Mean number of interactions per session (geometric continuation).
pub const MEAN_SESSION_LENGTH: f64 = 20.0;

/// A user session walking the interaction chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Session {
    mix: TpcwMix,
    state: InteractionClass,
    interactions: u32,
    finished: bool,
    continue_prob: f64,
}

impl Session {
    /// Starts a session; the first interaction is always a `Browse`
    /// (home page), as in TPC-W.
    pub fn start(mix: TpcwMix) -> Self {
        Session {
            mix,
            state: InteractionClass::Browse,
            interactions: 1,
            finished: false,
            continue_prob: 1.0 - 1.0 / MEAN_SESSION_LENGTH,
        }
    }

    /// The interaction the user is currently performing.
    pub fn current(&self) -> InteractionClass {
        self.state
    }

    /// Number of interactions performed so far.
    pub fn interactions(&self) -> u32 {
        self.interactions
    }

    /// Whether the session has ended.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Advances to the next interaction (or ends the session). Returns the
    /// new interaction, or `None` when the user leaves.
    pub fn advance(&mut self, rng: &mut SimRng) -> Option<InteractionClass> {
        if self.finished {
            return None;
        }
        if !rng.bernoulli(self.continue_prob) {
            self.finished = true;
            return None;
        }
        let row = transition_row(self.mix, self.state);
        let idx = rng.weighted_index(&row);
        self.state = InteractionClass::ALL[idx];
        self.interactions += 1;
        Some(self.state)
    }
}

/// Transition probabilities out of `from` for the given mix, aligned with
/// [`InteractionClass::ALL`].
///
/// Construction: a blend of the mix's stationary weights (which makes the
/// chain's long-run class frequencies match [`TpcwMix::class_weights`])
/// with sticky/structural mass: searches repeat, carts lead to buys, buys
/// return to browsing.
pub fn transition_row(mix: TpcwMix, from: InteractionClass) -> [f64; 5] {
    let w = mix.class_weights();
    // Structural adjacency of the store: rows are *extra* affinity.
    let affinity: [f64; 5] = match from {
        // browse -> browse/search
        InteractionClass::Browse => [0.30, 0.15, 0.0, 0.0, 0.0],
        // search -> search/browse (paging through results)
        InteractionClass::Search => [0.15, 0.30, 0.05, 0.0, 0.0],
        // cart -> buy or keep shopping
        InteractionClass::Cart => [0.10, 0.05, 0.10, 0.25, 0.0],
        // buy -> order status / back to browsing
        InteractionClass::Buy => [0.30, 0.0, 0.0, 0.0, 0.20],
        // order status -> browse
        InteractionClass::OrderStatus => [0.35, 0.05, 0.0, 0.0, 0.10],
    };
    let affinity_mass: f64 = affinity.iter().sum();
    let base_scale = 1.0 - affinity_mass;
    let mut row = [0.0; 5];
    for i in 0..5 {
        row[i] = w[i] * base_scale + affinity[i];
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_distributions() {
        for mix in [TpcwMix::Browsing, TpcwMix::Shopping, TpcwMix::Ordering] {
            for from in InteractionClass::ALL {
                let row = transition_row(mix, from);
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "{mix:?}/{from:?} sums {s}");
                assert!(row.iter().all(|p| *p >= 0.0));
            }
        }
    }

    #[test]
    fn sessions_start_at_home_and_eventually_end() {
        let mut rng = SimRng::new(1);
        let mut lengths = Vec::new();
        for _ in 0..2_000 {
            let mut s = Session::start(TpcwMix::Shopping);
            assert_eq!(s.current(), InteractionClass::Browse);
            while s.advance(&mut rng).is_some() {
                assert!(s.interactions() < 10_000, "session never ends");
            }
            assert!(s.is_finished());
            lengths.push(s.interactions() as f64);
        }
        let mean = lengths.iter().sum::<f64>() / lengths.len() as f64;
        assert!(
            (mean - MEAN_SESSION_LENGTH).abs() < 1.5,
            "mean session length {mean}"
        );
    }

    #[test]
    fn advancing_a_finished_session_stays_none() {
        let mut rng = SimRng::new(2);
        let mut s = Session::start(TpcwMix::Browsing);
        while s.advance(&mut rng).is_some() {}
        assert_eq!(s.advance(&mut rng), None);
        assert!(s.is_finished());
    }

    #[test]
    fn long_run_frequencies_approximate_the_mix() {
        // The chain's empirical class distribution should be close to the
        // mix weights (the affinity blend perturbs it mildly).
        let mix = TpcwMix::Shopping;
        let mut rng = SimRng::new(3);
        let mut counts = [0usize; 5];
        let mut total = 0usize;
        for _ in 0..3_000 {
            let mut s = Session::start(mix);
            loop {
                let idx = InteractionClass::ALL
                    .iter()
                    .position(|c| *c == s.current())
                    .unwrap();
                counts[idx] += 1;
                total += 1;
                if s.advance(&mut rng).is_none() {
                    break;
                }
            }
        }
        let weights = mix.class_weights();
        for (i, c) in counts.iter().enumerate() {
            let freq = *c as f64 / total as f64;
            assert!(
                (freq - weights[i]).abs() < 0.12,
                "class {i}: freq {freq} vs weight {}",
                weights[i]
            );
        }
        // Order-side share should sit in the shopping-mix ballpark.
        let order_freq = (counts[2] + counts[3] + counts[4]) as f64 / total as f64;
        assert!(
            (0.1..0.35).contains(&order_freq),
            "order share {order_freq}"
        );
    }

    #[test]
    fn cart_leads_to_buy_more_often_than_browse_does() {
        let buy_idx = 3;
        let from_cart = transition_row(TpcwMix::Shopping, InteractionClass::Cart)[buy_idx];
        let from_browse = transition_row(TpcwMix::Shopping, InteractionClass::Browse)[buy_idx];
        assert!(
            from_cart > 3.0 * from_browse,
            "{from_cart} vs {from_browse}"
        );
    }
}
