//! TPC-W interaction mixes.
//!
//! TPC-W groups its fourteen web interactions into *browse* and *order*
//! categories and defines three canonical mixes by their browse/order
//! ratio: **browsing** (95/5), **shopping** (80/20) and **ordering**
//! (50/50). We model five representative interaction classes with relative
//! service demands (order-side interactions hit the database harder) and
//! expose the mixes as sampling distributions.

use acm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A representative TPC-W interaction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InteractionClass {
    /// Home page / product detail (cheap, cacheable).
    Browse,
    /// Full-text and subject search (moderate).
    Search,
    /// Shopping-cart manipulation (moderate, write).
    Cart,
    /// Buy request + confirm (expensive, transactional).
    Buy,
    /// Order inquiry / display (moderate read).
    OrderStatus,
}

impl InteractionClass {
    /// All classes, in canonical order.
    pub const ALL: [InteractionClass; 5] = [
        InteractionClass::Browse,
        InteractionClass::Search,
        InteractionClass::Cart,
        InteractionClass::Buy,
        InteractionClass::OrderStatus,
    ];

    /// Service-demand multiplier relative to the VM's base request demand.
    pub fn demand_multiplier(self) -> f64 {
        match self {
            InteractionClass::Browse => 0.6,
            InteractionClass::Search => 1.2,
            InteractionClass::Cart => 1.0,
            InteractionClass::Buy => 2.2,
            InteractionClass::OrderStatus => 1.1,
        }
    }

    /// True for the order-side categories of the TPC-W spec.
    pub fn is_order_side(self) -> bool {
        matches!(
            self,
            InteractionClass::Cart | InteractionClass::Buy | InteractionClass::OrderStatus
        )
    }
}

/// One of the three canonical TPC-W mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TpcwMix {
    /// 95 % browse / 5 % order.
    Browsing,
    /// 80 % browse / 20 % order (the default reporting mix).
    #[default]
    Shopping,
    /// 50 % browse / 50 % order.
    Ordering,
}

impl TpcwMix {
    /// Class probabilities, aligned with [`InteractionClass::ALL`].
    pub fn class_weights(self) -> [f64; 5] {
        match self {
            // browse, search, cart, buy, order-status
            TpcwMix::Browsing => [0.70, 0.25, 0.025, 0.010, 0.015],
            TpcwMix::Shopping => [0.55, 0.25, 0.10, 0.05, 0.05],
            TpcwMix::Ordering => [0.30, 0.20, 0.20, 0.20, 0.10],
        }
    }

    /// Fraction of order-side interactions (sanity metric: ~0.05 / ~0.20 /
    /// ~0.50 for the three mixes).
    pub fn order_fraction(self) -> f64 {
        InteractionClass::ALL
            .iter()
            .zip(self.class_weights())
            .filter(|(c, _)| c.is_order_side())
            .map(|(_, w)| w)
            .sum()
    }

    /// Mean service-demand multiplier of the mix (weights the per-request
    /// demand the VM model sees).
    pub fn mean_demand_multiplier(self) -> f64 {
        InteractionClass::ALL
            .iter()
            .zip(self.class_weights())
            .map(|(c, w)| c.demand_multiplier() * w)
            .sum()
    }

    /// Samples an interaction class.
    pub fn sample(self, rng: &mut SimRng) -> InteractionClass {
        let idx = rng.weighted_index(&self.class_weights());
        InteractionClass::ALL[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_distributions() {
        for mix in [TpcwMix::Browsing, TpcwMix::Shopping, TpcwMix::Ordering] {
            let total: f64 = mix.class_weights().iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "{mix:?} sums to {total}");
        }
    }

    #[test]
    fn order_fractions_match_the_spec_ratios() {
        assert!((TpcwMix::Browsing.order_fraction() - 0.05).abs() < 1e-12);
        assert!((TpcwMix::Shopping.order_fraction() - 0.20).abs() < 1e-12);
        assert!((TpcwMix::Ordering.order_fraction() - 0.50).abs() < 1e-12);
    }

    #[test]
    fn ordering_mix_is_heavier_than_browsing() {
        assert!(
            TpcwMix::Ordering.mean_demand_multiplier() > TpcwMix::Browsing.mean_demand_multiplier()
        );
    }

    #[test]
    fn sampling_tracks_weights() {
        let mut rng = SimRng::new(1);
        let mix = TpcwMix::Shopping;
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            let c = mix.sample(&mut rng);
            let idx = InteractionClass::ALL.iter().position(|x| *x == c).unwrap();
            counts[idx] += 1;
        }
        for (count, weight) in counts.iter().zip(mix.class_weights()) {
            let freq = *count as f64 / n as f64;
            assert!((freq - weight).abs() < 0.01, "freq {freq} vs {weight}");
        }
    }

    #[test]
    fn buy_is_the_most_expensive_interaction() {
        let max = InteractionClass::ALL
            .iter()
            .map(|c| c.demand_multiplier())
            .fold(0.0, f64::max);
        assert_eq!(max, InteractionClass::Buy.demand_multiplier());
    }
}
