//! Per-region client populations and offered-rate computation.
//!
//! The paper varies "the number of active clients (towards each cloud
//! region) in the interval [16, 512], ensuring that the clients connected
//! to each cloud region were significantly different in number". Clients
//! are closed-loop, so a region's offered rate follows the interactive
//! response-time law `λ = N / (Z + R)`: when the system slows down, clients
//! naturally back off. [`RegionWorkload`] implements that law plus the
//! population schedules the ablation experiments sweep.

use crate::THINK_TIME_MEAN_S;
use acm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// How a region's client population evolves over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientSchedule {
    /// Fixed population.
    Constant(u32),
    /// Jumps from `before` to `after` at instant `at` (load-surge tests).
    Step {
        /// Population before the step.
        before: u32,
        /// Population after the step.
        after: u32,
        /// Step instant.
        at: SimTime,
    },
    /// Linear ramp from `from` to `to` between `start` and `end`.
    Ramp {
        /// Population at `start`.
        from: u32,
        /// Population at `end`.
        to: u32,
        /// Ramp start.
        start: SimTime,
        /// Ramp end.
        end: SimTime,
    },
    /// Day/night oscillation: `base + amplitude · sin(2πt / period)`,
    /// clamped at zero (real client populations follow the sun — the
    /// geographic-distribution motivation of Sec. I).
    Diurnal {
        /// Mean population.
        base: u32,
        /// Swing amplitude.
        amplitude: u32,
        /// Oscillation period (24 h in reality; compressed in experiments).
        period: acm_sim::time::Duration,
    },
}

impl ClientSchedule {
    /// Population at the given instant.
    pub fn population(&self, now: SimTime) -> u32 {
        match *self {
            ClientSchedule::Constant(n) => n,
            ClientSchedule::Step { before, after, at } => {
                if now < at {
                    before
                } else {
                    after
                }
            }
            ClientSchedule::Ramp {
                from,
                to,
                start,
                end,
            } => {
                if now <= start {
                    from
                } else if now >= end {
                    to
                } else {
                    let span = end.since(start).as_secs_f64();
                    let done = now.since(start).as_secs_f64();
                    let frac = done / span;
                    (from as f64 + (to as f64 - from as f64) * frac).round() as u32
                }
            }
            ClientSchedule::Diurnal {
                base,
                amplitude,
                period,
            } => {
                let phase = now.as_secs_f64() / period.as_secs_f64();
                let v = base as f64 + amplitude as f64 * (2.0 * std::f64::consts::PI * phase).sin();
                v.round().max(0.0) as u32
            }
        }
    }
}

/// The client population attached to one region's load balancer.
///
/// ```
/// use acm_workload::{ClientSchedule, RegionWorkload};
/// use acm_sim::SimTime;
/// let w = RegionWorkload::new(ClientSchedule::Constant(70));
/// // Interactive law λ = N / (Z + R) with the 7 s TPC-W think time:
/// assert!((w.offered_rate(SimTime::ZERO, 0.0) - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionWorkload {
    schedule: ClientSchedule,
    think_time_s: f64,
}

impl RegionWorkload {
    /// Creates a workload with the standard TPC-W think time.
    pub fn new(schedule: ClientSchedule) -> Self {
        RegionWorkload {
            schedule,
            think_time_s: THINK_TIME_MEAN_S,
        }
    }

    /// Creates a workload with a custom mean think time (seconds).
    pub fn with_think_time(schedule: ClientSchedule, think_time_s: f64) -> Self {
        assert!(think_time_s > 0.0, "think time must be positive");
        RegionWorkload {
            schedule,
            think_time_s,
        }
    }

    /// Client population at `now`.
    pub fn population(&self, now: SimTime) -> u32 {
        self.schedule.population(now)
    }

    /// Offered request rate (req/s) from this population under the
    /// interactive response-time law, given the response time the clients
    /// currently observe. Degrades gracefully: slow responses throttle the
    /// arrival rate exactly as real closed-loop clients would.
    pub fn offered_rate(&self, now: SimTime, observed_response_s: f64) -> f64 {
        let n = self.population(now) as f64;
        let r = observed_response_s.max(0.0);
        n / (self.think_time_s + r)
    }

    /// The schedule driving this workload.
    pub fn schedule(&self) -> &ClientSchedule {
        &self.schedule
    }
}

/// Total offered rate over a set of per-region workloads — the global `λ`
/// of paper Eq. 3.
pub fn global_rate(workloads: &[RegionWorkload], now: SimTime, responses: &[f64]) -> f64 {
    assert_eq!(workloads.len(), responses.len(), "one response per region");
    workloads
        .iter()
        .zip(responses)
        .map(|(w, r)| w.offered_rate(now, *r))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_schedule() {
        let w = RegionWorkload::new(ClientSchedule::Constant(128));
        assert_eq!(w.population(t(0)), 128);
        assert_eq!(w.population(t(10_000)), 128);
    }

    #[test]
    fn step_schedule_switches_at_instant() {
        let s = ClientSchedule::Step {
            before: 16,
            after: 512,
            at: t(100),
        };
        assert_eq!(s.population(t(99)), 16);
        assert_eq!(s.population(t(100)), 512);
        assert_eq!(s.population(t(101)), 512);
    }

    #[test]
    fn ramp_schedule_interpolates() {
        let s = ClientSchedule::Ramp {
            from: 100,
            to: 200,
            start: t(0),
            end: t(100),
        };
        assert_eq!(s.population(t(0)), 100);
        assert_eq!(s.population(t(50)), 150);
        assert_eq!(s.population(t(100)), 200);
        assert_eq!(s.population(t(500)), 200);
    }

    #[test]
    fn diurnal_schedule_oscillates_and_clamps() {
        let s = ClientSchedule::Diurnal {
            base: 100,
            amplitude: 150, // swings below zero -> clamped
            period: acm_sim::time::Duration::from_secs(400),
        };
        assert_eq!(s.population(t(0)), 100);
        assert_eq!(s.population(t(100)), 250); // peak at quarter period
        assert_eq!(s.population(t(300)), 0); // clamped trough
        assert_eq!(s.population(t(400)), 100); // full period
    }

    #[test]
    fn offered_rate_follows_the_interactive_law() {
        let w = RegionWorkload::new(ClientSchedule::Constant(70));
        // Fast responses: λ ≈ N / Z = 10/s.
        let fast = w.offered_rate(t(0), 0.0);
        assert!((fast - 10.0).abs() < 1e-9);
        // 1 s responses throttle the rate: 70 / 8 = 8.75.
        let slow = w.offered_rate(t(0), 1.0);
        assert!((slow - 8.75).abs() < 1e-9);
        assert!(slow < fast);
    }

    #[test]
    fn custom_think_time() {
        let w = RegionWorkload::with_think_time(ClientSchedule::Constant(10), 1.0);
        assert!((w.offered_rate(t(0), 0.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_think_time_panics() {
        let _ = RegionWorkload::with_think_time(ClientSchedule::Constant(1), 0.0);
    }

    #[test]
    fn global_rate_sums_regions() {
        let ws = vec![
            RegionWorkload::new(ClientSchedule::Constant(70)),
            RegionWorkload::new(ClientSchedule::Constant(140)),
        ];
        let total = global_rate(&ws, t(0), &[0.0, 0.0]);
        assert!((total - 30.0).abs() < 1e-9);
    }

    #[test]
    fn negative_observed_response_is_clamped() {
        let w = RegionWorkload::new(ClientSchedule::Constant(70));
        assert_eq!(w.offered_rate(t(0), -5.0), w.offered_rate(t(0), 0.0));
    }
}
