//! TPC-W-like workload generation.
//!
//! The paper's test-bed application is TPC-W, "a multi-tier e-commerce web
//! application that simulates an on-line store", driven by emulated web
//! browsers per the TPC-W specification, with client populations per region
//! varied in `[16, 512]` and "significantly different in number" across
//! regions (Sec. VI-A).
//!
//! * [`mix`] — the three canonical TPC-W interaction mixes (browsing,
//!   shopping, ordering) with per-class service-demand multipliers.
//! * [`browser`] — the emulated browser: exponential think time, session
//!   state machine over interaction classes.
//! * [`generator`] — per-region client populations with closed-loop offered
//!   rates (`λ = N / (Z + R)`) and population schedules (constant, step,
//!   ramp) for the load-surge experiments.
//! * [`session`] — the first-order Markov session machine over interaction
//!   classes (home → search → cart → buy …).
//! * [`trace`] — open-loop rate profiles (constant, steps, diurnal,
//!   burst) with Poisson arrival-trace materialisation for the benches,
//!   plus the incremental per-era [`OpenLoopArrivals`] generator (with
//!   deterministic per-shard pre-split streams) for mega-scale runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod browser;
pub mod generator;
pub mod mix;
pub mod session;
pub mod trace;

pub use browser::EmulatedBrowser;
pub use generator::{ClientSchedule, RegionWorkload};
pub use mix::{InteractionClass, TpcwMix};
pub use session::Session;
pub use trace::{ArrivalTrace, OpenLoopArrivals, RateProfile};

/// Mean think time of a TPC-W emulated browser, seconds (TPC-W clause
/// 5.3.2.1 prescribes a negative-exponential distribution with a 7-second
/// mean).
pub const THINK_TIME_MEAN_S: f64 = 7.0;
