//! The emulated web browser.
//!
//! TPC-W drives the system with *emulated browsers*: each one issues a
//! request, waits for the response, thinks for an exponentially-distributed
//! time (7 s mean) and repeats, walking a session over the interaction
//! classes. [`EmulatedBrowser`] implements that closed loop for the
//! event-driven examples; the era-grain generator in [`crate::generator`]
//! uses the same think-time constant in fluid form.

use crate::mix::{InteractionClass, TpcwMix};
use crate::THINK_TIME_MEAN_S;
use acm_sim::rng::SimRng;
use acm_sim::time::Duration;
use serde::{Deserialize, Serialize};

/// Lifecycle of one emulated browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrowserPhase {
    /// Waiting out the think time before the next request.
    Thinking,
    /// A request is outstanding.
    WaitingForResponse,
}

/// One closed-loop emulated browser.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulatedBrowser {
    id: u32,
    mix: TpcwMix,
    phase: BrowserPhase,
    requests_issued: u64,
    responses_seen: u64,
    rng: SimRng,
    last_class: Option<InteractionClass>,
}

impl EmulatedBrowser {
    /// Creates a browser in the thinking phase.
    pub fn new(id: u32, mix: TpcwMix, rng: SimRng) -> Self {
        EmulatedBrowser {
            id,
            mix,
            phase: BrowserPhase::Thinking,
            requests_issued: 0,
            responses_seen: 0,
            rng,
            last_class: None,
        }
    }

    /// Browser id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current phase.
    pub fn phase(&self) -> BrowserPhase {
        self.phase
    }

    /// Total requests issued.
    pub fn requests_issued(&self) -> u64 {
        self.requests_issued
    }

    /// Total responses observed.
    pub fn responses_seen(&self) -> u64 {
        self.responses_seen
    }

    /// The most recent interaction class issued.
    pub fn last_class(&self) -> Option<InteractionClass> {
        self.last_class
    }

    /// Draws the next think time.
    pub fn think_time(&mut self) -> Duration {
        Duration::from_secs_f64(self.rng.exponential(THINK_TIME_MEAN_S))
    }

    /// Ends the thinking phase: issues the next request, returning its
    /// interaction class. Panics if a request is already outstanding.
    pub fn issue_request(&mut self) -> InteractionClass {
        assert_eq!(
            self.phase,
            BrowserPhase::Thinking,
            "browser {} already has a request outstanding",
            self.id
        );
        self.phase = BrowserPhase::WaitingForResponse;
        self.requests_issued += 1;
        let class = self.mix.sample(&mut self.rng);
        self.last_class = Some(class);
        class
    }

    /// Delivers the response for the outstanding request; the browser goes
    /// back to thinking. Panics if no request is outstanding.
    pub fn receive_response(&mut self) {
        assert_eq!(
            self.phase,
            BrowserPhase::WaitingForResponse,
            "browser {} has no request outstanding",
            self.id
        );
        self.phase = BrowserPhase::Thinking;
        self.responses_seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn browser(seed: u64) -> EmulatedBrowser {
        EmulatedBrowser::new(1, TpcwMix::Shopping, SimRng::new(seed))
    }

    #[test]
    fn request_response_cycle() {
        let mut b = browser(1);
        assert_eq!(b.phase(), BrowserPhase::Thinking);
        let class = b.issue_request();
        assert_eq!(b.phase(), BrowserPhase::WaitingForResponse);
        assert_eq!(b.last_class(), Some(class));
        b.receive_response();
        assert_eq!(b.phase(), BrowserPhase::Thinking);
        assert_eq!(b.requests_issued(), 1);
        assert_eq!(b.responses_seen(), 1);
    }

    #[test]
    #[should_panic(expected = "already has a request outstanding")]
    fn double_issue_panics() {
        let mut b = browser(2);
        b.issue_request();
        b.issue_request();
    }

    #[test]
    #[should_panic(expected = "no request outstanding")]
    fn response_without_request_panics() {
        let mut b = browser(3);
        b.receive_response();
    }

    #[test]
    fn think_times_average_seven_seconds() {
        let mut b = browser(4);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| b.think_time().as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - THINK_TIME_MEAN_S).abs() < 0.2, "mean think {mean}");
    }

    #[test]
    fn interaction_classes_follow_the_mix() {
        let mut b = browser(5);
        let mut orders = 0;
        let n = 50_000;
        for _ in 0..n {
            let class = b.issue_request();
            if class.is_order_side() {
                orders += 1;
            }
            b.receive_response();
        }
        let frac = orders as f64 / n as f64;
        assert!((frac - 0.20).abs() < 0.02, "order fraction {frac}");
    }
}
