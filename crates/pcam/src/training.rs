//! Harvesting the F2PM feature database.
//!
//! "During an initial phase, the system under monitoring (namely a VM
//! running a server replica) runs the application and a thin software
//! client which measures a large set of system features [...] This
//! information is transferred to a feature monitor agent \[which\] builds a
//! database of system features" (paper Sec. III).
//!
//! [`collect_database`] replays that initial phase on the VM model: it runs
//! instrumented VMs to failure at a sweep of load levels, sampling the
//! monitored feature vector every era and labelling each sample with the
//! ground-truth remaining time to failure.

use acm_ml::dataset::Dataset;
use acm_sim::rng::SimRng;
use acm_sim::time::{Duration, SimTime};
use acm_vm::{AnomalyConfig, FailureSpec, FeatureVec, Vm, VmFlavor, VmId, VmState, FEATURE_NAMES};
use rayon::prelude::*;

/// Parameters for the collection phase.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Sampling period (one feature snapshot per era).
    pub era: Duration,
    /// Arrival rates to sweep (req/s per VM). Varying the rate is what
    /// teaches the models the load-dependence of the RTTF.
    pub lambdas: Vec<f64>,
    /// Instrumented runs-to-failure per rate.
    pub runs_per_lambda: usize,
    /// Safety cap on eras per run.
    pub max_eras_per_run: usize,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        CollectionConfig {
            era: Duration::from_secs(30),
            // Cover the low-rate regime too: lightly-loaded regions (the
            // paper's small private region under Policy 2) operate at a
            // couple of requests per second per VM, and tree predictors
            // extrapolate badly outside the training envelope.
            lambdas: vec![2.0, 4.0, 8.0, 12.0, 16.0, 24.0],
            runs_per_lambda: 3,
            max_eras_per_run: 400,
        }
    }
}

/// Runs instrumented VMs of `flavor` to failure and returns the labelled
/// feature database.
///
/// The runs are independent by construction, so they are harvested in
/// parallel on the workspace pool: the caller's RNG is split once per
/// `(lambda, run)` **in sequential order** before dispatch, and the
/// per-run row batches are concatenated in that same order afterwards —
/// the database is byte-identical to the sequential loop at any
/// `ACM_THREADS` setting.
pub fn collect_database(
    flavor: &VmFlavor,
    anomaly: &AnomalyConfig,
    failure_spec: &FailureSpec,
    cfg: &CollectionConfig,
    rng: &mut SimRng,
) -> Dataset {
    let mut runs = Vec::with_capacity(cfg.lambdas.len() * cfg.runs_per_lambda);
    for &lambda in &cfg.lambdas {
        for _run in 0..cfg.runs_per_lambda {
            runs.push((lambda, rng.split()));
        }
    }
    let batches: Vec<Vec<(Vec<f64>, f64)>> = runs
        .into_par_iter()
        .map(|(lambda, run_rng)| collect_run(flavor, anomaly, failure_spec, cfg, lambda, run_rng))
        .collect();
    let mut db = Dataset::new(FEATURE_NAMES);
    for (features, rttf) in batches.into_iter().flatten() {
        db.push(features, rttf);
    }
    db
}

/// Returns `db` with its target column randomly permuted: the features
/// keep their joint distribution but carry no information about the
/// label, so any model trained on the result is provably worthless.
/// Used to manufacture poisoned refit candidates when exercising the
/// lifecycle shadow gate (a promotion of such a candidate is a bug).
pub fn shuffle_targets(db: &Dataset, rng: &mut SimRng) -> Dataset {
    let mut targets: Vec<f64> = db.targets().to_vec();
    rng.shuffle(&mut targets);
    let mut out = Dataset::new(db.feature_names().iter().cloned());
    for (row, target) in db.rows().iter().zip(targets) {
        out.push(row.clone(), target);
    }
    out
}

/// One instrumented run-to-failure at a fixed arrival rate.
fn collect_run(
    flavor: &VmFlavor,
    anomaly: &AnomalyConfig,
    failure_spec: &FailureSpec,
    cfg: &CollectionConfig,
    lambda: f64,
    run_rng: SimRng,
) -> Vec<(Vec<f64>, f64)> {
    let mut vm = Vm::new(
        VmId(0),
        flavor.clone(),
        anomaly.clone(),
        failure_spec.clone(),
        VmState::Active,
        run_rng,
    );
    let mut rows = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..cfg.max_eras_per_run {
        let rttf = vm.true_rttf(lambda);
        if !rttf.is_finite() {
            break; // this load level never fails the VM
        }
        let features: FeatureVec = vm.features(now, lambda);
        rows.push((features.as_slice().to_vec(), rttf));
        vm.process_era(now, cfg.era, lambda);
        now += cfg.era;
        if !vm.is_active() {
            break; // reached the failure point
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_ml::toolchain::F2pmToolchain;

    fn quick_cfg() -> CollectionConfig {
        CollectionConfig {
            lambdas: vec![8.0, 16.0],
            runs_per_lambda: 2,
            ..Default::default()
        }
    }

    #[test]
    fn database_has_rows_and_decreasing_labels_within_runs() {
        let mut rng = SimRng::new(1);
        let db = collect_database(
            &VmFlavor::m3_medium(),
            &AnomalyConfig::default(),
            &FailureSpec::default(),
            &quick_cfg(),
            &mut rng,
        );
        assert!(db.len() > 20, "only {} rows", db.len());
        assert_eq!(db.width(), FEATURE_NAMES.len());
        // All labels are non-negative and finite.
        assert!(db.targets().iter().all(|t| t.is_finite() && *t >= 0.0));
    }

    #[test]
    fn collection_is_deterministic_per_seed() {
        let args = (
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            quick_cfg(),
        );
        let a = collect_database(&args.0, &args.1, &args.2, &args.3, &mut SimRng::new(5));
        let b = collect_database(&args.0, &args.1, &args.2, &args.3, &mut SimRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn collection_is_identical_across_thread_counts() {
        // The RNG is split per (lambda, run) in sequential order before
        // dispatch and batches are concatenated in that order, so the
        // database must not depend on the pool width.
        let args = (
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            quick_cfg(),
        );
        let before = acm_exec::current_threads();
        acm_exec::configure_threads(1);
        let seq = collect_database(&args.0, &args.1, &args.2, &args.3, &mut SimRng::new(9));
        acm_exec::configure_threads(4);
        let par = collect_database(&args.0, &args.1, &args.2, &args.3, &mut SimRng::new(9));
        acm_exec::configure_threads(before);
        assert_eq!(seq, par);
    }

    #[test]
    fn toolchain_learns_rttf_from_collected_database() {
        // End-to-end F2PM smoke test: collect → select → train → the best
        // model must predict held-out RTTF decently (R² well above zero).
        let mut rng = SimRng::new(2);
        let db = collect_database(
            &VmFlavor::m3_medium(),
            &AnomalyConfig::default(),
            &FailureSpec::default(),
            &CollectionConfig::default(),
            &mut rng,
        );
        let (predictor, report) = F2pmToolchain::default().run(&db, &mut rng);
        assert!(
            report.outcomes[0].metrics.r2 > 0.8,
            "best model too weak:\n{}",
            report.to_table()
        );
        // The deployed predictor gives sane estimates on a fresh VM.
        let vm = Vm::new(
            VmId(0),
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(3),
        );
        let pred = predictor.predict(vm.features(SimTime::ZERO, 12.0).as_slice());
        let truth = vm.true_rttf(12.0);
        let rel = (pred - truth).abs() / truth;
        assert!(rel < 0.5, "fresh-VM prediction {pred} vs truth {truth}");
    }
}
