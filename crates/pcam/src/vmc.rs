//! The Virtual Machine Controller (VMC).
//!
//! One VMC manages one cloud region: it maps the F2PM prediction model onto
//! each VM, estimates RTTFs at runtime, proactively rejuvenates VMs whose
//! predicted RTTF falls below the user threshold (activating a standby to
//! take over), recovers reactively from the failures the predictor missed,
//! spreads the region's request rate over the ACTIVE VMs, and reports the
//! region's mean time to failure (the `lastRMTTF_i` of paper Eq. 1).

use crate::balancer::BalancerStrategy;
use crate::lifecycle::{LifecycleConfig, LifecycleEvent, ModelLifecycle};
use crate::pool::{PoolCounts, VmPool};
use acm_ml::toolchain::RttfPredictor;
use acm_obs::{Obs, ObsHandle, Timer, Value};
use acm_sim::rng::SimRng;
use acm_sim::stats::OnlineStats;
use acm_sim::time::{Duration, SimTime};
use acm_vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmState};
use serde::{Deserialize, Serialize};

/// Where the VMC gets its RTTF estimates.
#[derive(Debug, Clone)]
pub enum RttfSource {
    /// Ground truth from the simulator (perfect-prediction baseline).
    Oracle,
    /// An F2PM-trained model over the monitored feature vector — the
    /// realistic path; its errors flow into the control loop exactly as
    /// they would in the deployed system.
    Model(RttfPredictor),
}

impl RttfSource {
    /// Estimated RTTF (seconds) of one VM at the given arrival rate.
    pub fn predict(&self, vm: &Vm, now: SimTime, lambda: f64) -> f64 {
        match self {
            RttfSource::Oracle => vm.true_rttf(lambda),
            RttfSource::Model(m) => m.predict(vm.features(now, lambda).as_slice()),
        }
    }

    /// Batch variant of [`RttfSource::predict`] over `(vm, lambda)` pairs.
    /// Clears and refills `out` index-aligned with `pairs`. The model path
    /// gathers the feature vectors into one packed buffer and runs a single
    /// batched prediction instead of a per-VM model walk.
    pub fn predict_many(&self, pairs: &[(&Vm, f64)], now: SimTime, out: &mut Vec<f64>) {
        match self {
            RttfSource::Oracle => {
                out.clear();
                out.extend(pairs.iter().map(|(vm, lambda)| vm.true_rttf(*lambda)));
            }
            RttfSource::Model(m) => {
                let rows: Vec<acm_vm::FeatureVec> = pairs
                    .iter()
                    .map(|(vm, lambda)| vm.features(now, *lambda))
                    .collect();
                m.predict_batch_into(rows.iter().map(|f| f.as_slice()), out);
            }
        }
    }
}

/// Static configuration of one region's controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Display name (e.g. `"eu-west-1"`).
    pub name: String,
    /// VM flavor of the region's pool.
    pub flavor: VmFlavor,
    /// Anomaly injection parameters.
    pub anomaly: AnomalyConfig,
    /// Failure-point definition.
    pub failure_spec: FailureSpec,
    /// Total VMs provisioned in the region.
    pub total_vms: usize,
    /// Desired simultaneously ACTIVE VMs.
    pub target_active: usize,
    /// Rejuvenate a VM when its predicted RTTF drops below this.
    pub rttf_threshold: Duration,
    /// How long a rejuvenation keeps a VM out of service.
    pub rejuvenation_time: Duration,
    /// Intra-region balancing strategy.
    pub balancer: BalancerStrategy,
    /// Price of one VM-hour in this region, USD. The paper motivates
    /// heterogeneous multi-cloud deployments with exactly this: "different
    /// cloud providers offer various types of VMs at different costs"
    /// (Sec. I); the cost-aware policy extension and the cost accounting in
    /// `acm-core::cost` consume it.
    pub vm_hour_usd: f64,
}

impl RegionConfig {
    /// A reasonable starting configuration for a named region.
    pub fn new(name: impl Into<String>, flavor: VmFlavor, total: usize, active: usize) -> Self {
        RegionConfig {
            name: name.into(),
            flavor,
            anomaly: AnomalyConfig::default(),
            failure_spec: FailureSpec::default(),
            total_vms: total,
            target_active: active,
            rttf_threshold: Duration::from_secs(120),
            rejuvenation_time: Duration::from_secs(60),
            balancer: BalancerStrategy::EqualShare,
            vm_hour_usd: 0.05,
        }
    }
}

/// What one region experienced during one control era.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionEraReport {
    /// Mean per-VM MTTF estimate over ACTIVE VMs at era end, seconds —
    /// the `lastRMTTF_i` this VMC sends to the leader.
    pub last_rmttf: f64,
    /// Requests offered to the region this era.
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completion-weighted mean response time, seconds.
    pub mean_response_s: f64,
    /// Proactive rejuvenations triggered this era.
    pub proactive_rejuvenations: u32,
    /// Reactive failures suffered this era (prediction misses).
    pub reactive_failures: u32,
    /// ACTIVE VM count after control actions.
    pub active_vms: usize,
    /// Mean utilisation across serving VMs.
    pub utilization: f64,
}

/// The per-region controller.
#[derive(Debug)]
pub struct Vmc {
    config: RegionConfig,
    pool: VmPool,
    rttf_source: RttfSource,
    /// Versioned model registry (None unless enabled on a Model source).
    lifecycle: Option<ModelLifecycle>,
    /// Lifetime counters.
    proactive_total: u64,
    reactive_total: u64,
    /// Observability hub (the shared no-op by default) plus pre-resolved
    /// timers for the balancer and the proactive rejuvenation scan.
    obs: ObsHandle,
    balancer_timer: Timer,
    rejuv_scan_timer: Timer,
}

impl Vmc {
    /// Builds the controller and its pool.
    pub fn new(config: RegionConfig, rttf_source: RttfSource, rng: SimRng) -> Self {
        let pool = VmPool::new(
            config.flavor.clone(),
            config.anomaly.clone(),
            config.failure_spec.clone(),
            config.total_vms,
            config.target_active,
            rng,
        );
        Vmc {
            config,
            pool,
            rttf_source,
            lifecycle: None,
            proactive_total: 0,
            reactive_total: 0,
            obs: Obs::noop(),
            balancer_timer: Timer::default(),
            rejuv_scan_timer: Timer::default(),
        }
    }

    /// Attaches a versioned model lifecycle to this controller. Only
    /// effective for [`RttfSource::Model`] regions — the oracle has no
    /// model to refit — and only when `cfg.enabled` is set. `rng` seeds
    /// the lifecycle's dedicated stream (refit jobs split from it).
    pub fn enable_lifecycle(&mut self, cfg: LifecycleConfig, rng: SimRng) {
        if cfg.enabled && matches!(self.rttf_source, RttfSource::Model(_)) {
            self.lifecycle = Some(ModelLifecycle::new(cfg, rng));
        }
    }

    /// Mutable model-registry access (chaos/test hooks only).
    pub fn lifecycle_mut(&mut self) -> Option<&mut ModelLifecycle> {
        self.lifecycle.as_mut()
    }

    /// The model registry, when one is attached.
    pub fn lifecycle(&self) -> Option<&ModelLifecycle> {
        self.lifecycle.as_ref()
    }

    /// The RTTF source currently serving predictions.
    pub fn rttf_source(&self) -> &RttfSource {
        &self.rttf_source
    }

    /// Era prologue for the model lifecycle: collects a due background
    /// refit at its deterministic era boundary. No-op without a registry.
    pub fn lifecycle_begin_era(&mut self, era_index: u64) -> Vec<LifecycleEvent> {
        match &mut self.lifecycle {
            Some(lc) => lc.begin_era(era_index),
            None => Vec::new(),
        }
    }

    /// Era epilogue for the model lifecycle: regression watch, shadow
    /// verdict (a promotion or rollback swaps the serving predictor in
    /// place), and possibly a new refit submission off the drift signal.
    pub fn lifecycle_end_era(&mut self, era_index: u64, drifted: bool) -> Vec<LifecycleEvent> {
        match &mut self.lifecycle {
            Some(lc) => lc.end_era(era_index, drifted, &mut self.rttf_source),
            None => Vec::new(),
        }
    }

    /// Attaches observability to this controller and its pool: balancer /
    /// rejuvenation-scan timers (`acm.pcam.balancer.shares_ns`,
    /// `acm.pcam.vmc.rejuvenation_scan_ns`) and the decision events
    /// (`rejuvenation.proactive`, `rejuvenation.reactive`,
    /// `standby.activate`).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.balancer_timer = obs.timer("acm.pcam.balancer.shares_ns");
        self.rejuv_scan_timer = obs.timer("acm.pcam.vmc.rejuvenation_scan_ns");
        self.pool.set_obs_scoped(&obs, Some(&self.config.name));
        self.obs = obs;
    }

    /// Region name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The configuration in force.
    pub fn config(&self) -> &RegionConfig {
        &self.config
    }

    /// The pool (read).
    pub fn pool(&self) -> &VmPool {
        &self.pool
    }

    /// The pool (write — autoscaling hooks).
    pub fn pool_mut(&mut self) -> &mut VmPool {
        &mut self.pool
    }

    /// Current pool census.
    pub fn counts(&self) -> PoolCounts {
        self.pool.counts()
    }

    /// Lifetime proactive rejuvenation count.
    pub fn proactive_total(&self) -> u64 {
        self.proactive_total
    }

    /// Lifetime reactive failure count.
    pub fn reactive_total(&self) -> u64 {
        self.reactive_total
    }

    /// Estimated MTTF of one VM: predicted remaining time plus the lifetime
    /// already survived (exact for the fluid anomaly model, and the natural
    /// estimator a deployed VMC computes from its rejuvenation log).
    pub fn vm_mttf_estimate(&self, vm: &Vm, now: SimTime, lambda: f64) -> f64 {
        let rttf = self.rttf_source.predict(vm, now, lambda);
        rttf + vm.age(now).as_secs_f64()
    }

    /// The region's current RMTTF estimate: the average MTTF estimate over
    /// ACTIVE VMs ("calculated as the average MTTF of all active VMs in the
    /// region", paper Sec. IV). Returns 0 when nothing is active.
    pub fn region_mttf(&self, now: SimTime, region_lambda: f64) -> f64 {
        let pairs: Vec<(&Vm, f64)> = {
            let active: Vec<&Vm> = self.pool.vms().iter().filter(|v| v.is_active()).collect();
            if active.is_empty() {
                return 0.0;
            }
            let per_vm = region_lambda / active.len() as f64;
            active.into_iter().map(|vm| (vm, per_vm)).collect()
        };
        let mut rttfs = Vec::new();
        self.rttf_source.predict_many(&pairs, now, &mut rttfs);
        let mut s = OnlineStats::new();
        for ((vm, _), rttf) in pairs.iter().zip(&rttfs) {
            let m = rttf + vm.age(now).as_secs_f64();
            s.push(m.min(1e7)); // clamp "never fails" to a large finite value
        }
        s.mean()
    }

    /// Runs one full control era for this region:
    ///
    /// 1. complete due rejuvenations, promote standbys to the target count,
    /// 2. split `region_lambda` over ACTIVE VMs per the balancer,
    /// 3. let every ACTIVE VM process its share (anomalies accumulate,
    ///    failures may fire mid-era),
    /// 4. recover reactively from failures (immediate rejuvenation +
    ///    standby takeover),
    /// 5. proactively rejuvenate any VM whose predicted RTTF is below the
    ///    threshold, if a standby can take its place,
    /// 6. report the era, including `lastRMTTF`.
    pub fn process_era(
        &mut self,
        now: SimTime,
        era: Duration,
        region_lambda: f64,
    ) -> RegionEraReport {
        // (1) housekeeping.
        self.pool.poll_rejuvenations(now);
        let activated = self.pool.replenish_active(now);
        if activated > 0 && self.obs.enabled() {
            self.obs.emit(
                now.as_micros(),
                "standby.activate",
                vec![
                    ("region", Value::from(self.config.name.as_str())),
                    ("count", Value::from(activated)),
                    ("reason", Value::from("housekeeping")),
                ],
            );
        }
        self.pool.demote_excess_active(now);

        // (2) balance.
        let active_ids = self.pool.active_ids();
        let shares = {
            let _span = self.balancer_timer.start();
            let active: Vec<&Vm> = active_ids
                .iter()
                .map(|id| self.pool.vm(*id).expect("active id"))
                .collect();
            let per_vm_hint = if active.is_empty() {
                0.0
            } else {
                region_lambda / active.len() as f64
            };
            let src = &self.rttf_source;
            self.config
                .balancer
                .shares(&active, now, per_vm_hint, |vm| {
                    src.predict(vm, now, per_vm_hint)
                })
        };

        // (3) serve.
        let mut offered = 0;
        let mut completed = 0;
        let mut response_num = 0.0;
        let mut util = OnlineStats::new();
        let mut vm_lambdas: Vec<(acm_vm::VmId, f64)> = Vec::with_capacity(active_ids.len());
        for (id, share) in active_ids.iter().zip(&shares) {
            let lambda_vm = region_lambda * share;
            vm_lambdas.push((*id, lambda_vm));
            let vm = self.pool.vm_mut(*id).expect("active id");
            // Lifecycle snapshot: the feature vector as it was when the
            // era's serving began, labelled retroactively on outcome.
            if let Some(lc) = &mut self.lifecycle {
                lc.observe(*id, now, vm.features(now, lambda_vm));
            }
            let out = vm.process_era(now, era, lambda_vm);
            offered += out.offered;
            completed += out.completed;
            if out.completed > 0 {
                response_num += out.mean_response_s * out.completed as f64;
            }
            util.push(out.utilization.min(5.0));
        }
        // Completion-weighted mean response time, as the clients measure it.
        let mean_response_s = if completed > 0 {
            response_num / completed as f64
        } else {
            0.0
        };

        let end = now + era;

        // (4) reactive recovery.
        let mut reactive = 0;
        let obs = &self.obs;
        let region_name = self.config.name.as_str();
        let incumbent = match &self.rttf_source {
            RttfSource::Model(m) => Some(m),
            RttfSource::Oracle => None,
        };
        for vm in self.pool.vms_mut() {
            if let VmState::Failed { at, .. } = vm.state() {
                // The true failure instant labels this VM's snapshots.
                if let Some(lc) = &mut self.lifecycle {
                    lc.on_failure(vm.id(), at, incumbent);
                }
                vm.start_rejuvenation(end, self.config.rejuvenation_time);
                reactive += 1;
                if obs.enabled() {
                    obs.emit(
                        end.as_micros(),
                        "rejuvenation.reactive",
                        vec![
                            ("region", Value::from(region_name)),
                            ("vm", Value::from(vm.id().0)),
                        ],
                    );
                }
            }
        }
        let activated = self.pool.replenish_active(end);
        if activated > 0 && self.obs.enabled() {
            self.obs.emit(
                end.as_micros(),
                "standby.activate",
                vec![
                    ("region", Value::from(self.config.name.as_str())),
                    ("count", Value::from(activated)),
                    ("reason", Value::from("reactive")),
                ],
            );
        }

        // (5) proactive rejuvenation. Candidates come only from this era's
        // serving set (`vm_lambdas`) and their predictions are fixed at
        // `end`, so one scored pass in ascending-RTTF order is equivalent
        // to the old rejuvenate-worst-then-rescan loop — without the O(n²)
        // rescans.
        let threshold = self.config.rttf_threshold.as_secs_f64();
        let mut proactive = 0;
        let mut spares = self.pool.counts().standby;
        if spares > 0 {
            let _span = self.rejuv_scan_timer.start();
            let mut candidates: Vec<(f64, acm_vm::VmId)> = Vec::with_capacity(vm_lambdas.len());
            {
                let mut pairs: Vec<(&Vm, f64)> = Vec::with_capacity(vm_lambdas.len());
                let mut ids: Vec<acm_vm::VmId> = Vec::with_capacity(vm_lambdas.len());
                for (id, lambda_vm) in &vm_lambdas {
                    let Some(vm) = self.pool.vm(*id) else {
                        continue;
                    };
                    if !vm.is_active() {
                        continue;
                    }
                    pairs.push((vm, *lambda_vm));
                    ids.push(*id);
                }
                let mut rttfs = Vec::new();
                self.rttf_source.predict_many(&pairs, end, &mut rttfs);
                candidates.extend(
                    ids.iter()
                        .zip(&rttfs)
                        .filter(|(_, rttf)| **rttf < threshold)
                        .map(|(id, rttf)| (*rttf, *id)),
                );
            }
            // Stable sort: equal RTTFs keep serving order, matching the old
            // first-on-tie rescan.
            candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite RTTF"));
            for (rttf, id) in candidates {
                if spares == 0 {
                    break; // no spare to take over: keep serving
                }
                // Lifecycle: the snapshots of a proactively rejuvenated
                // VM are censored at `end` (it provably survived until
                // the rejuvenation, its true failure time is unknown).
                if let Some(lc) = &mut self.lifecycle {
                    lc.on_rejuvenation(id, end, incumbent);
                }
                self.pool
                    .vm_mut(id)
                    .expect("candidate id")
                    .start_rejuvenation(end, self.config.rejuvenation_time);
                proactive += 1;
                spares -= 1;
                if self.obs.enabled() {
                    self.obs.emit(
                        end.as_micros(),
                        "rejuvenation.proactive",
                        vec![
                            ("region", Value::from(self.config.name.as_str())),
                            ("vm", Value::from(id.0)),
                            ("predicted_rttf_s", Value::from(rttf)),
                            ("threshold_s", Value::from(threshold)),
                        ],
                    );
                }
                let activated = self.pool.replenish_active(end);
                if activated > 0 && self.obs.enabled() {
                    self.obs.emit(
                        end.as_micros(),
                        "standby.activate",
                        vec![
                            ("region", Value::from(self.config.name.as_str())),
                            ("count", Value::from(activated)),
                            ("reason", Value::from("takeover")),
                        ],
                    );
                }
            }
        }

        self.proactive_total += proactive as u64;
        self.reactive_total += reactive as u64;

        // (6) report. Refresh the pool-state gauges first so `obs_report`
        // sees the post-control census.
        self.pool.publish_gauges();
        let last_rmttf = self.region_mttf(end, region_lambda);
        RegionEraReport {
            last_rmttf,
            offered,
            completed,
            mean_response_s,
            proactive_rejuvenations: proactive,
            reactive_failures: reactive,
            active_vms: self.pool.counts().active,
            utilization: util.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_vmc(total: usize, active: usize, source: RttfSource) -> Vmc {
        let cfg = RegionConfig::new("test-region", VmFlavor::m3_medium(), total, active);
        Vmc::new(cfg, source, SimRng::new(7))
    }

    fn run_eras(vmc: &mut Vmc, eras: usize, lambda: f64) -> Vec<RegionEraReport> {
        let era = Duration::from_secs(30);
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        for _ in 0..eras {
            out.push(vmc.process_era(now, era, lambda));
            now += era;
        }
        out
    }

    #[test]
    fn healthy_region_serves_everything() {
        let mut vmc = mk_vmc(6, 4, RttfSource::Oracle);
        let reports = run_eras(&mut vmc, 3, 20.0);
        for r in &reports {
            assert_eq!(r.offered, r.completed);
            assert!(r.mean_response_s < 0.2, "response {}", r.mean_response_s);
            assert_eq!(r.active_vms, 4);
        }
    }

    #[test]
    fn proactive_rejuvenation_preempts_failures_with_oracle() {
        let mut vmc = mk_vmc(6, 4, RttfSource::Oracle);
        // Long run at substantial load: with perfect predictions every
        // failure must be preempted.
        let reports = run_eras(&mut vmc, 60, 40.0);
        let reactive: u32 = reports.iter().map(|r| r.reactive_failures).sum();
        let proactive: u32 = reports.iter().map(|r| r.proactive_rejuvenations).sum();
        assert_eq!(reactive, 0, "oracle must never miss a failure");
        assert!(proactive > 0, "sustained load must trigger rejuvenations");
    }

    #[test]
    fn rmttf_reflects_load_level() {
        let mut light = mk_vmc(6, 4, RttfSource::Oracle);
        let mut heavy = mk_vmc(6, 4, RttfSource::Oracle);
        let light_rmttf = run_eras(&mut light, 10, 10.0).last().unwrap().last_rmttf;
        let heavy_rmttf = run_eras(&mut heavy, 10, 40.0).last().unwrap().last_rmttf;
        assert!(
            light_rmttf > 2.0 * heavy_rmttf,
            "light {light_rmttf} vs heavy {heavy_rmttf}"
        );
    }

    #[test]
    fn rmttf_is_roughly_stationary_under_constant_load() {
        let mut vmc = mk_vmc(6, 4, RttfSource::Oracle);
        let reports = run_eras(&mut vmc, 40, 30.0);
        let tail: Vec<f64> = reports[10..].iter().map(|r| r.last_rmttf).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let max_dev = tail.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        assert!(
            max_dev < mean * 0.5,
            "RMTTF too unstable: mean {mean}, max dev {max_dev}"
        );
    }

    #[test]
    fn no_standby_means_no_proactive_action() {
        let mut vmc = mk_vmc(4, 4, RttfSource::Oracle);
        let reports = run_eras(&mut vmc, 60, 40.0);
        let proactive: u32 = reports.iter().map(|r| r.proactive_rejuvenations).sum();
        let reactive: u32 = reports.iter().map(|r| r.reactive_failures).sum();
        assert_eq!(proactive, 0, "no spares: the VMC cannot act proactively");
        assert!(reactive > 0, "without spares, failures become reactive");
    }

    #[test]
    fn zero_load_region_is_immortal() {
        let mut vmc = mk_vmc(4, 2, RttfSource::Oracle);
        let reports = run_eras(&mut vmc, 10, 0.0);
        for r in &reports {
            assert_eq!(r.offered, 0);
            assert_eq!(r.reactive_failures, 0);
            assert_eq!(r.proactive_rejuvenations, 0);
        }
        // Unloaded VMs never fail: the clamped MTTF is huge.
        assert!(reports.last().unwrap().last_rmttf > 1e6);
    }

    #[test]
    fn era_reports_count_rejuvenation_capacity_dip() {
        let mut vmc = mk_vmc(5, 4, RttfSource::Oracle);
        let reports = run_eras(&mut vmc, 80, 45.0);
        // At some point a rejuvenation leaves the region with fewer active
        // VMs than the target (only 1 spare).
        let min_active = reports.iter().map(|r| r.active_vms).min().unwrap();
        assert!(min_active <= 4);
        // But the pool recovers to target afterwards.
        let last_active = reports.last().unwrap().active_vms;
        assert!(last_active >= 3);
    }

    #[test]
    fn proactive_rejuvenations_are_logged_with_prediction_and_threshold() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut vmc = mk_vmc(6, 4, RttfSource::Oracle);
        vmc.set_obs(obs.clone());
        run_eras(&mut vmc, 60, 40.0);
        assert!(vmc.proactive_total() > 0, "scenario must rejuvenate");
        let rejuv: Vec<_> = obs
            .events_tail(usize::MAX)
            .into_iter()
            .filter(|e| e.kind == "rejuvenation.proactive")
            .collect();
        assert_eq!(rejuv.len() as u64, vmc.proactive_total());
        let threshold = vmc.config().rttf_threshold.as_secs_f64();
        for e in &rejuv {
            let get = |k: &str| {
                e.fields
                    .iter()
                    .find(|(name, _)| *name == k)
                    .unwrap_or_else(|| panic!("missing field {k}"))
                    .1
                    .clone()
            };
            assert_eq!(get("region"), acm_obs::Value::from("test-region"));
            let acm_obs::Value::F64(rttf) = get("predicted_rttf_s") else {
                panic!("predicted_rttf_s must be a float")
            };
            assert!(rttf < threshold, "logged rttf {rttf} >= {threshold}");
            assert_eq!(get("threshold_s"), acm_obs::Value::from(threshold));
        }
        // Balancer and scan timers collected wall-clock samples.
        assert!(
            obs.histogram("acm.pcam.balancer.shares_ns")
                .snapshot()
                .count
                >= 60
        );
        assert!(
            obs.histogram("acm.pcam.vmc.rejuvenation_scan_ns")
                .snapshot()
                .count
                > 0
        );
        // Takeovers show up as standby activations.
        assert!(obs
            .events_tail(usize::MAX)
            .iter()
            .any(|e| e.kind == "standby.activate"));
    }

    #[test]
    fn mttf_estimate_adds_age_to_rttf() {
        let vmc = mk_vmc(2, 1, RttfSource::Oracle);
        let vm = &vmc.pool().vms()[0];
        let now = SimTime::from_secs(100);
        let est = vmc.vm_mttf_estimate(vm, now, 10.0);
        let rttf = vm.true_rttf(10.0);
        assert!((est - (rttf + 100.0)).abs() < 1e-9);
    }
}
