//! Versioned RTTF model lifecycle (extension).
//!
//! `online` gave the VMC drift detection and retroactive labelling, but
//! left two production gaps: a drift-triggered refit ran *inline* on the
//! control thread (stalling the MAPE loop for whole eras), and the fresh
//! model replaced the incumbent with **no evaluation** — a worse model
//! shipped silently. This module closes both:
//!
//! * **Background refits** — when drift fires, the current labelled
//!   dataset is snapshotted and training runs as a claimable job on the
//!   `acm-exec` pool. The control loop keeps planning; the result is
//!   collected at a *deterministic era boundary* (`refit_eras` eras after
//!   submission), never "when it happens to finish", so the simulation is
//!   byte-identical at any `ACM_THREADS`. The job's RNG is split from the
//!   lifecycle stream *before* dispatch, in sequential order.
//! * **Shadow evaluation** — the candidate enters `Loading → Shadowing`:
//!   it scores the live feature stream alongside the incumbent without
//!   influencing any decision. The error is **censored-aware**: rows from
//!   failures score absolute RTTF error; rejuvenation-censored rows (true
//!   failure time unobserved, survival ≥ bound proven) score only when a
//!   model predicts failure *before* the censor point — a provable
//!   misprediction of at least `bound − prediction` seconds.
//! * **Promote / rollback** — the candidate is promoted (an atomic swap
//!   of the VMC's predictor) only if its shadow error beats the
//!   incumbent's over at least `shadow_min_samples` rows for *both*
//!   models; the displaced version is retained, and a post-promotion
//!   regression (live error exceeding the displaced model's shadow error
//!   by `rollback_factor`) rolls the registry back to it.

use crate::online::OnlineLabeler;
use crate::vmc::RttfSource;
use acm_exec::JobHandle;
use acm_ml::model::ModelKind;
use acm_ml::toolchain::{F2pmToolchain, RttfPredictor};
use acm_sim::rng::SimRng;
use acm_sim::time::SimTime;
use acm_vm::{FeatureVec, VmId};
use serde::{Deserialize, Serialize};

/// Hard floor on refit dataset size, matching the F2PM toolchain's own
/// minimum — a refit is never submitted on fewer rows no matter how low
/// `min_labelled_rows` is configured.
pub const MIN_REFIT_ROWS: usize = 20;

/// Tuning of the versioned model lifecycle. Disabled by default: a
/// config that never mentions the lifecycle replays byte-identically to
/// runs recorded before it existed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// Master switch. When off, the VMC carries no lifecycle state at
    /// all (and consumes no RNG stream).
    pub enabled: bool,
    /// Labelled rows required before a drift signal may trigger a refit.
    pub min_labelled_rows: usize,
    /// Eras between submitting a refit job and collecting its result.
    /// The deterministic join point: the candidate is picked up exactly
    /// this many eras later regardless of when the job really finished.
    pub refit_eras: u64,
    /// Minimum shadow samples (for BOTH candidate and incumbent) before
    /// the promotion verdict is evaluated.
    pub shadow_min_samples: usize,
    /// Post-promotion samples scored before the regression verdict.
    pub rollback_window: usize,
    /// Roll back when the promoted model's live error exceeds the
    /// displaced model's shadow error by this factor.
    pub rollback_factor: f64,
    /// Minimum eras between consecutive refit submissions.
    pub cooldown_eras: u64,
    /// Test hook: train refit candidates on label-shuffled data, making
    /// them provably worthless. The shadow gate must reject every one.
    pub poison_refits: bool,
    /// Test hook: skip the shadow comparison and promote the candidate
    /// as soon as one sample per model exists (exercises rollback).
    pub force_promote: bool,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            enabled: false,
            min_labelled_rows: 60,
            refit_eras: 2,
            shadow_min_samples: 12,
            rollback_window: 8,
            rollback_factor: 1.5,
            cooldown_eras: 8,
            poison_refits: false,
            force_promote: false,
        }
    }
}

impl LifecycleConfig {
    /// Sanity-checks the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_labelled_rows == 0 {
            return Err("lifecycle min_labelled_rows must be > 0".into());
        }
        if self.refit_eras == 0 {
            return Err("lifecycle refit_eras must be > 0".into());
        }
        if self.shadow_min_samples == 0 {
            return Err("lifecycle shadow_min_samples must be > 0".into());
        }
        if self.rollback_window == 0 {
            return Err("lifecycle rollback_window must be > 0".into());
        }
        if !(self.rollback_factor.is_finite() && self.rollback_factor >= 1.0) {
            return Err(format!(
                "lifecycle rollback_factor must be finite and >= 1: {}",
                self.rollback_factor
            ));
        }
        Ok(())
    }
}

/// Censored-aware absolute-error accumulator for one model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShadowScore {
    abs_err_sum: f64,
    samples: usize,
}

impl ShadowScore {
    /// A failure row: the true RTTF was observed, score `|pred − actual|`.
    fn score_failure(&mut self, pred: f64, actual: f64) {
        self.abs_err_sum += (pred - actual).abs();
        self.samples += 1;
    }

    /// A censored row: the VM provably survived `bound` seconds past the
    /// snapshot. A prediction at or beyond the bound is *consistent* with
    /// the censored observation and scores nothing; predicting failure
    /// before the censor point is a provable misprediction of at least
    /// `bound − pred`.
    fn score_censored(&mut self, pred: f64, bound: f64) {
        if pred < bound {
            self.abs_err_sum += bound - pred;
            self.samples += 1;
        }
    }

    /// Scored rows so far (censored rows consistent with the model do
    /// not count — the denominators of two models legitimately differ).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Mean absolute error over the scored rows.
    pub fn mean(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.abs_err_sum / self.samples as f64)
    }
}

/// A refit job in flight on the exec pool.
#[derive(Debug)]
struct PendingRefit {
    version: u64,
    submitted_era: u64,
    handle: JobHandle<RttfPredictor>,
}

/// A candidate scoring the live stream next to the incumbent.
#[derive(Debug)]
struct ShadowCandidate {
    version: u64,
    predictor: RttfPredictor,
    cand: ShadowScore,
    incumbent: ShadowScore,
}

/// Post-promotion regression watch: the freshly promoted model must not
/// do much worse live than the model it displaced did in shadow.
#[derive(Debug)]
struct RegressionWatch {
    baseline_err: f64,
    score: ShadowScore,
}

/// Where the registry currently is.
#[derive(Debug)]
enum Phase {
    /// Serving the incumbent; no refit in flight.
    Idle,
    /// A background refit job is training a candidate.
    Loading(PendingRefit),
    /// The candidate shadows the incumbent on the live stream.
    Shadowing(ShadowCandidate),
}

/// A state transition the control loop should surface as a decision
/// event (and act on: `Promoted`/`RolledBack` mean the serving predictor
/// just changed).
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent {
    /// A refit job was submitted to the exec pool.
    RefitStarted {
        /// Version the candidate will carry.
        version: u64,
        /// Labelled rows in the snapshotted training set.
        rows: usize,
    },
    /// The refit result was collected; the candidate starts shadowing.
    RefitDone {
        /// Candidate version now shadowing.
        version: u64,
    },
    /// The candidate beat the incumbent and now serves.
    Promoted {
        /// Version now serving.
        version: u64,
        /// Version displaced (retained for rollback).
        old_version: u64,
        /// Candidate mean shadow error, seconds.
        cand_err: f64,
        /// Incumbent mean shadow error, seconds.
        incumbent_err: f64,
        /// Shadow rows the candidate scored.
        samples: usize,
    },
    /// The candidate lost the shadow comparison and was discarded.
    Rejected {
        /// Candidate version discarded.
        version: u64,
        /// Candidate mean shadow error, seconds.
        cand_err: f64,
        /// Incumbent mean shadow error, seconds.
        incumbent_err: f64,
    },
    /// The promoted model regressed live; the prior version serves again.
    RolledBack {
        /// Version rolled out of service.
        from_version: u64,
        /// Version restored.
        to_version: u64,
        /// Live mean error that tripped the watch, seconds.
        err: f64,
        /// The displaced model's shadow error the promotion promised to
        /// uphold, seconds.
        baseline_err: f64,
    },
}

/// The per-region versioned model registry. Owned by the [`crate::Vmc`];
/// driven once per era from the control loop (`begin_era` before the
/// region serves, `end_era` after outcomes are known), fed outcome rows
/// by the VMC's failure/rejuvenation paths.
#[derive(Debug)]
pub struct ModelLifecycle {
    cfg: LifecycleConfig,
    labeler: OnlineLabeler,
    /// Version of the serving predictor (the initial offline model is 1).
    version: u64,
    /// Next candidate version to assign.
    next_version: u64,
    phase: Phase,
    /// The displaced predictor retained across a promotion.
    prior: Option<(u64, RttfPredictor)>,
    watch: Option<RegressionWatch>,
    last_refit_era: Option<u64>,
    /// Dedicated RNG stream; refit jobs split from it in sequential
    /// order before dispatch.
    rng: SimRng,
}

impl ModelLifecycle {
    /// A fresh registry serving version 1.
    pub fn new(cfg: LifecycleConfig, rng: SimRng) -> Self {
        ModelLifecycle {
            cfg,
            labeler: OnlineLabeler::new(),
            version: 1,
            next_version: 2,
            phase: Phase::Idle,
            prior: None,
            watch: None,
            last_refit_era: None,
            rng,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    /// Flips the poison-refits chaos hook at runtime. Test support: a
    /// poisoned phase after an honest warm-up exercises the shadow gate
    /// against an incumbent fitted to the live distribution, which is the
    /// regression the gate exists to stop.
    pub fn set_poison_refits(&mut self, on: bool) {
        self.cfg.poison_refits = on;
    }

    /// Serving model version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The labeller feeding refits (read).
    pub fn labeler(&self) -> &OnlineLabeler {
        &self.labeler
    }

    /// Current phase, for gauges/debugging.
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Idle => "idle",
            Phase::Loading(_) => "loading",
            Phase::Shadowing(_) => "shadowing",
        }
    }

    /// `(candidate, incumbent)` mean shadow errors, when shadowing and
    /// both models have scored at least one row.
    pub fn shadow_errs(&self) -> Option<(f64, f64)> {
        match &self.phase {
            Phase::Shadowing(s) => Some((s.cand.mean()?, s.incumbent.mean()?)),
            _ => None,
        }
    }

    /// Records a feature snapshot for a VM (one per era per ACTIVE VM).
    pub fn observe(&mut self, vm: VmId, now: SimTime, features: FeatureVec) {
        self.labeler.observe(vm, now, features);
    }

    /// A VM failed at `at`: label its snapshots and score the newly
    /// labelled rows for whatever is shadowing / under regression watch.
    pub fn on_failure(&mut self, vm: VmId, at: SimTime, incumbent: Option<&RttfPredictor>) {
        let rows = self.labeler.on_failure_rows(vm, at);
        for (features, rttf) in &rows {
            let f = features.as_slice();
            if let Phase::Shadowing(s) = &mut self.phase {
                s.cand.score_failure(s.predictor.predict(f), *rttf);
                if let Some(m) = incumbent {
                    s.incumbent.score_failure(m.predict(f), *rttf);
                }
            }
            if let (Some(w), Some(m)) = (&mut self.watch, incumbent) {
                w.score.score_failure(m.predict(f), *rttf);
            }
        }
    }

    /// A VM was proactively rejuvenated at `at`: its snapshots become
    /// censored lower bounds and score censored-aware.
    pub fn on_rejuvenation(&mut self, vm: VmId, at: SimTime, incumbent: Option<&RttfPredictor>) {
        let rows = self.labeler.on_rejuvenation(vm, at);
        for (features, bound) in &rows {
            let f = features.as_slice();
            if let Phase::Shadowing(s) = &mut self.phase {
                s.cand.score_censored(s.predictor.predict(f), *bound);
                if let Some(m) = incumbent {
                    s.incumbent.score_censored(m.predict(f), *bound);
                }
            }
            if let (Some(w), Some(m)) = (&mut self.watch, incumbent) {
                w.score.score_censored(m.predict(f), *bound);
            }
        }
    }

    /// Era prologue: collect a due refit result. The join point is the
    /// fixed era boundary `submitted_era + refit_eras` — if the job has
    /// not started by then, the caller claims and runs it inline (the
    /// claimable-task discipline), so the outcome is identical at any
    /// pool width.
    pub fn begin_era(&mut self, era_index: u64) -> Vec<LifecycleEvent> {
        let mut events = Vec::new();
        let due = matches!(
            &self.phase,
            Phase::Loading(p) if era_index >= p.submitted_era + self.cfg.refit_eras
        );
        if due {
            let Phase::Loading(p) = std::mem::replace(&mut self.phase, Phase::Idle) else {
                unreachable!("checked above");
            };
            let predictor = p.handle.join();
            events.push(LifecycleEvent::RefitDone { version: p.version });
            self.phase = Phase::Shadowing(ShadowCandidate {
                version: p.version,
                predictor,
                cand: ShadowScore::default(),
                incumbent: ShadowScore::default(),
            });
        }
        events
    }

    /// Era epilogue: evaluate the regression watch, deliver the shadow
    /// verdict, and maybe submit a new refit off the drift signal.
    /// `Promoted`/`RolledBack` swap the serving predictor in `source`
    /// in place — the VMC's next prediction uses the new version.
    pub fn end_era(
        &mut self,
        era_index: u64,
        drifted: bool,
        source: &mut RttfSource,
    ) -> Vec<LifecycleEvent> {
        let mut events = Vec::new();

        // (1) Post-promotion regression watch: one verdict per promotion,
        // delivered once `rollback_window` live rows have been scored.
        if let Some(w) = &self.watch {
            if w.score.samples() >= self.cfg.rollback_window {
                let err = w.score.mean().expect("samples > 0");
                let baseline = w.baseline_err;
                self.watch = None;
                if err > baseline * self.cfg.rollback_factor {
                    if let Some((prior_version, prior_model)) = self.prior.take() {
                        let from = self.version;
                        *source = RttfSource::Model(prior_model);
                        self.version = prior_version;
                        events.push(LifecycleEvent::RolledBack {
                            from_version: from,
                            to_version: prior_version,
                            err,
                            baseline_err: baseline,
                        });
                    }
                }
            }
        }

        // (2) Shadow verdict.
        let verdict_due = match &self.phase {
            Phase::Shadowing(s) => {
                let enough = s.cand.samples() >= self.cfg.shadow_min_samples
                    && s.incumbent.samples() >= self.cfg.shadow_min_samples;
                let forced =
                    self.cfg.force_promote && s.cand.samples() >= 1 && s.incumbent.samples() >= 1;
                enough || forced
            }
            _ => false,
        };
        if verdict_due {
            let Phase::Shadowing(s) = std::mem::replace(&mut self.phase, Phase::Idle) else {
                unreachable!("checked above");
            };
            let cand_err = s.cand.mean().expect("samples >= 1");
            let incumbent_err = s.incumbent.mean().expect("samples >= 1");
            let promote = self.cfg.force_promote || cand_err < incumbent_err;
            match (promote, &mut *source) {
                (true, RttfSource::Model(incumbent)) => {
                    let old_version = self.version;
                    self.prior = Some((old_version, incumbent.clone()));
                    let samples = s.cand.samples();
                    *source = RttfSource::Model(s.predictor);
                    self.version = s.version;
                    // The promoted model must at least live up to the
                    // error level of the model it displaced.
                    self.watch = Some(RegressionWatch {
                        baseline_err: incumbent_err,
                        score: ShadowScore::default(),
                    });
                    events.push(LifecycleEvent::Promoted {
                        version: s.version,
                        old_version,
                        cand_err,
                        incumbent_err,
                        samples,
                    });
                }
                _ => {
                    events.push(LifecycleEvent::Rejected {
                        version: s.version,
                        cand_err,
                        incumbent_err,
                    });
                }
            }
        }

        // (3) Maybe submit a refit: idle, drifted, enough labels, out of
        // cooldown. The dataset snapshot and the RNG split happen here,
        // on the control thread, in era order — the job itself is free
        // to finish whenever; only `begin_era` observes it.
        let cooled = self
            .last_refit_era
            .is_none_or(|e| era_index.saturating_sub(e) >= self.cfg.cooldown_eras);
        if matches!(self.phase, Phase::Idle)
            && drifted
            && cooled
            && self.labeler.labelled_rows() >= self.cfg.min_labelled_rows.max(MIN_REFIT_ROWS)
        {
            let rows = self.labeler.labelled_rows();
            let db = self.labeler.database().clone();
            let mut job_rng = self.rng.split();
            let poison = self.cfg.poison_refits;
            let version = self.next_version;
            self.next_version += 1;
            let handle = acm_exec::spawn_job(move || {
                let db = if poison {
                    crate::training::shuffle_targets(&db, &mut job_rng)
                } else {
                    db
                };
                let toolchain = F2pmToolchain {
                    models: vec![ModelKind::RepTree],
                    ..Default::default()
                };
                toolchain.run(&db, &mut job_rng).0
            });
            self.phase = Phase::Loading(PendingRefit {
                version,
                submitted_era: era_index,
                handle,
            });
            self.last_refit_era = Some(era_index);
            events.push(LifecycleEvent::RefitStarted { version, rows });
        }

        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{collect_database, CollectionConfig};
    use acm_sim::time::Duration;
    use acm_vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmState, FEATURE_COUNT};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn quick_predictor(seed: u64) -> RttfPredictor {
        let mut rng = SimRng::new(seed);
        let db = collect_database(
            &VmFlavor::m3_medium(),
            &AnomalyConfig::default(),
            &FailureSpec::default(),
            &CollectionConfig {
                lambdas: vec![8.0, 16.0],
                runs_per_lambda: 2,
                ..Default::default()
            },
            &mut rng,
        );
        F2pmToolchain {
            models: vec![ModelKind::RepTree],
            ..Default::default()
        }
        .run(&db, &mut rng)
        .0
    }

    fn feature_vec(seed: u64) -> FeatureVec {
        // A real VM snapshot so the predictors see in-distribution rows.
        let vm = Vm::new(
            VmId(0),
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(seed),
        );
        vm.features(SimTime::from_secs(seed), 12.0)
    }

    #[test]
    fn config_validates() {
        LifecycleConfig::default().validate().unwrap();
        for bad in [
            LifecycleConfig {
                min_labelled_rows: 0,
                ..Default::default()
            },
            LifecycleConfig {
                refit_eras: 0,
                ..Default::default()
            },
            LifecycleConfig {
                shadow_min_samples: 0,
                ..Default::default()
            },
            LifecycleConfig {
                rollback_window: 0,
                ..Default::default()
            },
            LifecycleConfig {
                rollback_factor: 0.5,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must not validate");
        }
    }

    #[test]
    fn censored_scoring_only_penalises_provable_mispredictions() {
        let mut s = ShadowScore::default();
        // Predicting survival past the censor bound is consistent.
        s.score_censored(500.0, 300.0);
        assert_eq!(s.samples(), 0);
        assert_eq!(s.mean(), None);
        // Predicting failure before the bound is provably wrong by at
        // least the shortfall.
        s.score_censored(100.0, 300.0);
        assert_eq!(s.samples(), 1);
        assert_eq!(s.mean(), Some(200.0));
        s.score_failure(50.0, 80.0);
        assert_eq!(s.samples(), 2);
        assert_eq!(s.mean(), Some(115.0));
    }

    /// Feeds `n` labelled failure rows with spread-out targets.
    fn feed_rows(lc: &mut ModelLifecycle, n: u32, seed: u64) {
        for i in 0..n {
            lc.observe(VmId(i), t(0), feature_vec(seed + u64::from(i)));
            lc.on_failure(VmId(i), t(u64::from(i) * 40 + 40), None);
        }
    }

    #[test]
    fn refit_is_submitted_and_collected_at_the_era_boundary() {
        let cfg = LifecycleConfig {
            enabled: true,
            min_labelled_rows: 1,
            refit_eras: 2,
            ..Default::default()
        };
        let mut lc = ModelLifecycle::new(cfg, SimRng::new(1));
        let mut source = RttfSource::Model(quick_predictor(7));

        feed_rows(&mut lc, 24, 100);
        assert_eq!(lc.labeler().labelled_rows(), 24);

        let ev = lc.end_era(5, true, &mut source);
        assert_eq!(
            ev,
            vec![LifecycleEvent::RefitStarted {
                version: 2,
                rows: 24
            }]
        );
        assert_eq!(lc.phase_name(), "loading");

        // Not due yet at era 6; due at era 7 = 5 + refit_eras.
        assert!(lc.begin_era(6).is_empty());
        assert_eq!(lc.phase_name(), "loading");
        let ev = lc.begin_era(7);
        assert_eq!(ev, vec![LifecycleEvent::RefitDone { version: 2 }]);
        assert_eq!(lc.phase_name(), "shadowing");
        // Still serving version 1 while shadowing.
        assert_eq!(lc.version(), 1);
    }

    #[test]
    fn too_few_rows_never_submit_a_refit() {
        let cfg = LifecycleConfig {
            enabled: true,
            min_labelled_rows: 1, // below the toolchain floor on purpose
            ..Default::default()
        };
        let mut lc = ModelLifecycle::new(cfg, SimRng::new(8));
        let mut source = RttfSource::Model(quick_predictor(7));
        feed_rows(&mut lc, (MIN_REFIT_ROWS - 1) as u32, 500);
        assert!(lc.end_era(0, true, &mut source).is_empty());
        assert_eq!(lc.phase_name(), "idle");
    }

    #[test]
    fn poisoned_candidate_is_rejected_by_the_shadow_gate() {
        // The refit trains on label-shuffled data (provably worthless);
        // shadow rows are manufactured so the incumbent is nearly exact
        // (actual = its own prediction, rounded to seconds). A strictly
        // better candidate is impossible → the gate must reject.
        let cfg = LifecycleConfig {
            enabled: true,
            min_labelled_rows: 20,
            refit_eras: 1,
            shadow_min_samples: 4,
            cooldown_eras: 0,
            poison_refits: true,
            ..Default::default()
        };
        let mut lc = ModelLifecycle::new(cfg, SimRng::new(2));
        let incumbent = quick_predictor(7);
        let mut source = RttfSource::Model(incumbent.clone());

        feed_rows(&mut lc, 24, 100);
        assert!(!lc.end_era(0, true, &mut source).is_empty());
        lc.begin_era(1);
        assert_eq!(lc.phase_name(), "shadowing");

        for i in 0..4u64 {
            let f = feature_vec(300 + i);
            let actual = incumbent.predict(f.as_slice()).max(1.0);
            lc.observe(VmId(300 + i as u32), t(1_000), f);
            lc.on_failure(
                VmId(300 + i as u32),
                t(1_000) + Duration::from_secs(actual as u64),
                Some(&incumbent),
            );
        }
        let ev = lc.end_era(2, false, &mut source);
        assert!(
            matches!(ev.as_slice(), [LifecycleEvent::Rejected { version: 2, .. }]),
            "worthless candidate must be rejected, got {ev:?}"
        );
        assert_eq!(lc.version(), 1);
        assert_eq!(lc.phase_name(), "idle");
        // The incumbent kept serving, untouched.
        let RttfSource::Model(m) = &source else {
            panic!("model source")
        };
        let probe = feature_vec(999);
        assert_eq!(
            m.predict(probe.as_slice()),
            incumbent.predict(probe.as_slice())
        );
    }

    #[test]
    fn force_promote_then_regression_rolls_back_to_prior_exactly() {
        let cfg = LifecycleConfig {
            enabled: true,
            min_labelled_rows: 1,
            refit_eras: 1,
            shadow_min_samples: 1,
            rollback_window: 2,
            rollback_factor: 1.5,
            cooldown_eras: 100, // one refit only
            poison_refits: true,
            force_promote: true,
        };
        let mut lc = ModelLifecycle::new(cfg, SimRng::new(3));
        let original = quick_predictor(7);
        let mut source = RttfSource::Model(original.clone());

        // Enough rows for the poisoned refit to train on.
        feed_rows(&mut lc, 24, 10);
        assert!(!lc.end_era(0, true, &mut source).is_empty());
        lc.begin_era(1);

        // One scored failure row for both models, then force-promotion.
        // actual ≈ the incumbent's own prediction, so the regression
        // baseline (the displaced model's shadow error) is < 1 s.
        let f = feature_vec(50);
        let incumbent = match &source {
            RttfSource::Model(m) => m.clone(),
            RttfSource::Oracle => unreachable!(),
        };
        let inc_pred = incumbent.predict(f.as_slice()).max(1.0);
        lc.observe(VmId(100), t(100), f);
        lc.on_failure(
            VmId(100),
            t(100) + Duration::from_secs(inc_pred as u64),
            Some(&incumbent),
        );
        let ev = lc.end_era(2, false, &mut source);
        assert!(
            matches!(
                ev.as_slice(),
                [LifecycleEvent::Promoted {
                    version: 2,
                    old_version: 1,
                    ..
                }]
            ),
            "force_promote must promote, got {ev:?}"
        );
        assert_eq!(lc.version(), 2);

        // Live rows where the original model is exactly right: the
        // poisoned model's error dwarfs the baseline → rollback.
        let serving = match &source {
            RttfSource::Model(m) => m.clone(),
            RttfSource::Oracle => unreachable!(),
        };
        for i in 0..2u32 {
            let fi = feature_vec(u64::from(i) + 60);
            let actual = original.predict(fi.as_slice()).max(1.0);
            lc.observe(VmId(200 + i), t(1_000), fi);
            lc.on_failure(
                VmId(200 + i),
                t(1_000) + Duration::from_secs(actual as u64),
                Some(&serving),
            );
        }
        let ev = lc.end_era(3, false, &mut source);
        assert!(
            matches!(
                ev.as_slice(),
                [LifecycleEvent::RolledBack {
                    from_version: 2,
                    to_version: 1,
                    ..
                }]
            ),
            "regression must roll back, got {ev:?}"
        );
        assert_eq!(lc.version(), 1);

        // The restored predictor is byte-for-byte the original: its
        // predictions match exactly on arbitrary probes.
        let RttfSource::Model(restored) = &source else {
            panic!("model source");
        };
        for seed in 0..20u64 {
            let p = feature_vec(seed + 300);
            assert_eq!(
                restored.predict(p.as_slice()),
                original.predict(p.as_slice()),
                "rollback must restore the prior version's predictions"
            );
        }
    }

    #[test]
    fn lifecycle_is_deterministic_across_thread_counts() {
        let run = || {
            let cfg = LifecycleConfig {
                enabled: true,
                min_labelled_rows: 20,
                refit_eras: 2,
                shadow_min_samples: 1,
                force_promote: true,
                cooldown_eras: 100,
                ..Default::default()
            };
            let mut lc = ModelLifecycle::new(cfg, SimRng::new(11));
            let mut source = RttfSource::Model(quick_predictor(7));
            let mut transcript: Vec<LifecycleEvent> = Vec::new();
            for era in 0..20u64 {
                transcript.extend(lc.begin_era(era));
                // Three labelled rows per era keep the refit fed.
                let vm = VmId(era as u32);
                for k in 0..3u64 {
                    lc.observe(vm, t(era * 30 + k), feature_vec(era * 3 + k + 1));
                }
                let incumbent = match &source {
                    RttfSource::Model(m) => Some(m.clone()),
                    RttfSource::Oracle => None,
                };
                lc.on_failure(vm, t(era * 30 + 90), incumbent.as_ref());
                transcript.extend(lc.end_era(era, true, &mut source));
            }
            let probe = feature_vec(999);
            let RttfSource::Model(m) = &source else {
                panic!("model source")
            };
            (transcript, m.predict(probe.as_slice()))
        };
        let before = acm_exec::current_threads();
        acm_exec::configure_threads(1);
        let seq = run();
        acm_exec::configure_threads(4);
        let par = run();
        acm_exec::configure_threads(before);
        assert_eq!(seq, par, "lifecycle must not depend on pool width");
        assert!(
            seq.0
                .iter()
                .any(|e| matches!(e, LifecycleEvent::Promoted { .. })),
            "scenario must exercise a promotion: {:?}",
            seq.0
        );
    }

    #[test]
    fn snapshots_with_nan_features_never_reach_the_refit_dataset() {
        let cfg = LifecycleConfig {
            enabled: true,
            ..Default::default()
        };
        let mut lc = ModelLifecycle::new(cfg, SimRng::new(5));
        lc.observe(VmId(0), t(0), FeatureVec::new([f64::NAN; FEATURE_COUNT]));
        lc.on_failure(VmId(0), t(10), None);
        assert_eq!(lc.labeler().labelled_rows(), 0);
        assert_eq!(lc.labeler().dropped_non_finite(), 1);
    }
}
