//! Intra-region load balancing.
//!
//! "All the requests issued by remote clients of the system are directed to
//! VMC, which hosts a load balancer. The goal of this component is to
//! balance the load associated to client requests to VMs in the ACTIVE
//! state" (paper Sec. III). At the era grain, balancing assigns each ACTIVE
//! VM a share of the region's arrival rate.

use acm_sim::time::SimTime;
use acm_sim::weights::WeightTable;
use acm_vm::Vm;
use serde::{Deserialize, Serialize};

/// How the VMC spreads the region's request rate over its ACTIVE VMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BalancerStrategy {
    /// Every active VM gets the same share (round-robin in the limit).
    #[default]
    EqualShare,
    /// Shares proportional to each VM's remaining health (its ground-truth
    /// or predicted RTTF): healthier VMs absorb more load. This is the
    /// intra-region analogue of the paper's inter-region sensible routing.
    HealthWeighted,
    /// Shares proportional to each VM's current effective service rate:
    /// degraded VMs are relieved.
    CapacityWeighted,
}

impl BalancerStrategy {
    /// Stable display name (metric labels and the decision log).
    pub fn name(self) -> &'static str {
        match self {
            BalancerStrategy::EqualShare => "equal-share",
            BalancerStrategy::HealthWeighted => "health-weighted",
            BalancerStrategy::CapacityWeighted => "capacity-weighted",
        }
    }

    /// Computes per-VM shares (summing to 1) for the given active VMs.
    ///
    /// `rttf_of` supplies the health signal for [`BalancerStrategy::HealthWeighted`]; it is a
    /// closure so callers can plug either the ground truth or the ML
    /// prediction without the balancer knowing which. Normalisation runs
    /// through [`WeightTable::normalize`] — the same audited primitive the
    /// request router samples from — so balancer shares and routed flow
    /// agree on weight arithmetic.
    pub fn shares<F>(self, vms: &[&Vm], now: SimTime, lambda_hint: f64, rttf_of: F) -> Vec<f64>
    where
        F: Fn(&Vm) -> f64,
    {
        let n = vms.len();
        if n == 0 {
            return Vec::new();
        }
        let raw: Vec<f64> = match self {
            BalancerStrategy::EqualShare => vec![1.0; n],
            BalancerStrategy::HealthWeighted => {
                vms.iter().map(|vm| rttf_of(vm).clamp(1e-6, 1e9)).collect()
            }
            BalancerStrategy::CapacityWeighted => vms
                .iter()
                .map(|vm| {
                    let _ = now;
                    let _ = lambda_hint;
                    acm_vm::service::effective_service_rate(
                        vm.flavor(),
                        vm.anomaly_config(),
                        vm.anomaly(),
                    )
                    .max(1e-6)
                })
                .collect(),
        };
        WeightTable::normalize(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_sim::rng::SimRng;
    use acm_sim::time::{Duration, SimTime};
    use acm_vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmId, VmState};

    fn mk_vm(id: u32, seed: u64) -> Vm {
        Vm::new(
            VmId(id),
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(seed),
        )
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn equal_share_is_uniform() {
        let vms = [mk_vm(0, 1), mk_vm(1, 2), mk_vm(2, 3)];
        let refs: Vec<&Vm> = vms.iter().collect();
        let s = BalancerStrategy::EqualShare.shares(&refs, t0(), 10.0, |v| v.true_rttf(10.0));
        assert_eq!(s, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn shares_sum_to_one_for_all_strategies() {
        let mut vms = [mk_vm(0, 1), mk_vm(1, 2), mk_vm(2, 3)];
        // Age one VM so weights differ.
        vms[0].process_era(t0(), Duration::from_secs(120), 20.0);
        let refs: Vec<&Vm> = vms.iter().collect();
        for strat in [
            BalancerStrategy::EqualShare,
            BalancerStrategy::HealthWeighted,
            BalancerStrategy::CapacityWeighted,
        ] {
            let s = strat.shares(&refs, t0(), 10.0, |v| v.true_rttf(10.0));
            let total: f64 = s.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "{strat:?} sums to {total}");
            assert!(s.iter().all(|x| *x >= 0.0));
        }
    }

    #[test]
    fn health_weighted_favours_fresh_vms() {
        let mut vms = [mk_vm(0, 1), mk_vm(1, 2)];
        // Damage VM 0 heavily.
        for era in 0..6 {
            vms[0].process_era(SimTime::from_secs(era * 30), Duration::from_secs(30), 25.0);
        }
        let refs: Vec<&Vm> = vms.iter().collect();
        let s = BalancerStrategy::HealthWeighted.shares(&refs, t0(), 10.0, |v| v.true_rttf(10.0));
        assert!(s[1] > s[0], "fresh VM should get more: {s:?}");
    }

    #[test]
    fn capacity_weighted_relieves_degraded_vms() {
        let mut vms = [mk_vm(0, 1), mk_vm(1, 2)];
        // Push VM 0 into swap so its service rate drops.
        for era in 0..12 {
            vms[0].process_era(SimTime::from_secs(era * 30), Duration::from_secs(30), 25.0);
            if !vms[0].is_active() {
                break;
            }
        }
        let refs: Vec<&Vm> = vms.iter().collect();
        let s = BalancerStrategy::CapacityWeighted.shares(&refs, t0(), 10.0, |v| v.true_rttf(10.0));
        assert!(s[1] >= s[0], "degraded VM should get no more: {s:?}");
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: Vec<&str> = [
            BalancerStrategy::EqualShare,
            BalancerStrategy::HealthWeighted,
            BalancerStrategy::CapacityWeighted,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        assert_eq!(
            names,
            vec!["equal-share", "health-weighted", "capacity-weighted"]
        );
    }

    #[test]
    fn empty_vm_list_gives_empty_shares() {
        let refs: Vec<&Vm> = Vec::new();
        let s = BalancerStrategy::EqualShare.shares(&refs, t0(), 10.0, |_| 1.0);
        assert!(s.is_empty());
    }

    #[test]
    fn infinite_rttf_is_clamped() {
        // A VM with zero load has infinite RTTF; shares must stay finite.
        let vms = [mk_vm(0, 1), mk_vm(1, 2)];
        let refs: Vec<&Vm> = vms.iter().collect();
        let s = BalancerStrategy::HealthWeighted.shares(&refs, t0(), 0.0, |v| v.true_rttf(0.0));
        assert!(s.iter().all(|x| x.is_finite()));
        let total: f64 = s.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
