//! Event-driven (per-request) region façade.
//!
//! [`crate::vmc::Vmc`] operates at the control-era grain the figures use;
//! [`RegionSim`] exposes the same pool management at the *request* grain
//! for discrete-event simulations: dispatch a request now, tick the
//! controller periodically, and the ACTIVE/STANDBY/rejuvenation choreography
//! is identical to the era-grain path (same [`VmPool`], same thresholds).

use crate::pool::{PoolCounts, VmPool};
use crate::vmc::{RegionConfig, RttfSource};
use acm_obs::{Counter, ObsHandle};
use acm_sim::rng::SimRng;
use acm_sim::time::SimTime;
use acm_vm::service::RequestOutcome;
use acm_vm::VmState;
use serde::{Deserialize, Serialize};

/// Lifetime counters of an event-driven region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSimStats {
    /// Requests served to completion — counted when the in-flight slot is
    /// released ([`RegionSim::finish`]), so `completed + dropped` stays
    /// consistent with the work actually in flight.
    pub completed: u64,
    /// Requests dropped (no ACTIVE VM, or the target VM failed on arrival).
    pub dropped: u64,
    /// Proactive rejuvenations triggered by the RTTF threshold.
    pub proactive: u64,
    /// Reactive rejuvenations after an un-predicted failure.
    pub reactive: u64,
}

/// Per-request driver over a PCAM-managed pool.
#[derive(Debug, Clone)]
pub struct RegionSim {
    config: RegionConfig,
    pool: VmPool,
    rttf_source: RttfSource,
    rr_next: usize,
    /// Estimated per-VM arrival rate used by the failure predicates and the
    /// RTTF predictions (req/s).
    lambda_hint: f64,
    stats: RegionSimStats,
    /// Requests begun but not yet finished (region grain, survives VM
    /// rejuvenation clearing the per-VM counters).
    inflight: u64,
    /// Drop instrumentation; inert until [`RegionSim::set_obs`].
    ctr_dropped: Counter,
}

impl RegionSim {
    /// Builds the region. `lambda_hint` is the expected per-VM arrival rate
    /// (update it via [`RegionSim::set_lambda_hint`] when the offered load
    /// changes).
    pub fn new(
        config: RegionConfig,
        rttf_source: RttfSource,
        lambda_hint: f64,
        rng: SimRng,
    ) -> Self {
        let pool = VmPool::new(
            config.flavor.clone(),
            config.anomaly.clone(),
            config.failure_spec.clone(),
            config.total_vms,
            config.target_active,
            rng,
        );
        RegionSim {
            config,
            pool,
            rttf_source,
            rr_next: 0,
            lambda_hint,
            stats: RegionSimStats::default(),
            inflight: 0,
            ctr_dropped: Counter::default(),
        }
    }

    /// Attaches observability to this region and its pool: the pool's
    /// dispatch/lifecycle counters plus `acm.pcam.region.dropped` for
    /// requests rejected at dispatch.
    pub fn set_obs(&mut self, obs: &ObsHandle) {
        self.pool.set_obs_scoped(obs, Some(&self.config.name));
        self.ctr_dropped = obs.counter("acm.pcam.region.dropped");
    }

    /// Pool census.
    pub fn counts(&self) -> PoolCounts {
        self.pool.counts()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RegionSimStats {
        self.stats
    }

    /// The pool (read).
    pub fn pool(&self) -> &VmPool {
        &self.pool
    }

    /// Updates the per-VM arrival-rate estimate.
    pub fn set_lambda_hint(&mut self, lambda: f64) {
        assert!(lambda.is_finite() && lambda >= 0.0);
        self.lambda_hint = lambda;
    }

    /// Dispatches one request round-robin over the ACTIVE VMs without
    /// concurrency tracking (fire-and-forget grain). Returns the request
    /// outcome, or `None` if it had to be dropped.
    pub fn serve(&mut self, now: SimTime) -> Option<RequestOutcome> {
        self.begin(now).map(|(vm, out)| {
            self.finish(vm);
            out
        })
    }

    /// Dispatches one request with concurrency tracking: the serving VM's
    /// in-flight count stays raised (dilating concurrent sojourns via
    /// processor sharing) until the caller invokes [`RegionSim::finish`]
    /// with the returned VM id — typically from the scheduled completion
    /// event.
    pub fn begin(&mut self, now: SimTime) -> Option<(acm_vm::VmId, RequestOutcome)> {
        // Cached ACTIVE list: no allocation, no pool scan in steady state.
        let active = self.pool.active_ids_cached();
        if active.is_empty() {
            self.stats.dropped += 1;
            self.ctr_dropped.inc();
            return None;
        }
        let id = active[self.rr_next % active.len()];
        self.rr_next = self.rr_next.wrapping_add(1);
        let hint = self.lambda_hint;
        match self.pool.begin_request(id, now, hint) {
            Some(out) => {
                self.inflight += 1;
                Some((id, out))
            }
            None => {
                self.stats.dropped += 1;
                self.ctr_dropped.inc();
                None
            }
        }
    }

    /// Releases the in-flight slot taken by [`RegionSim::begin`] and counts
    /// the request as completed. Safe to call even if the VM has since
    /// failed or been rejuvenated; calls with no request in flight are
    /// ignored rather than inflating the counters.
    pub fn finish(&mut self, vm: acm_vm::VmId) {
        self.pool.end_request(vm);
        if self.inflight > 0 {
            self.inflight -= 1;
            self.stats.completed += 1;
        }
    }

    /// One controller tick: complete due rejuvenations, promote spares,
    /// recover failed VMs reactively, then proactively rejuvenate the worst
    /// ACTIVE VM below the RTTF threshold while spares allow.
    pub fn control_tick(&mut self, now: SimTime) {
        self.pool.poll_rejuvenations(now);
        self.pool.replenish_active(now);
        self.pool.demote_excess_active(now);

        // Reactive path.
        let failed: Vec<_> = self
            .pool
            .vms()
            .iter()
            .filter(|vm| matches!(vm.state(), VmState::Failed { .. }))
            .map(|vm| vm.id())
            .collect();
        for id in failed {
            self.pool
                .vm_mut(id)
                .expect("failed id")
                .start_rejuvenation(now, self.config.rejuvenation_time);
            self.stats.reactive += 1;
        }
        self.pool.replenish_active(now);

        // Proactive path: RTTF depends only on a VM's own state and the
        // per-VM rate hint, so each round scores the ACTIVE set once and
        // rejuvenates the below-threshold VMs in ascending-RTTF order while
        // spares last, instead of rescanning the pool after every single
        // rejuvenation. Standbys promoted during a round are scored by the
        // next round; the fixpoint is unchanged.
        let threshold = self.config.rttf_threshold.as_secs_f64();
        let hint = self.lambda_hint;
        let mut candidates: Vec<(f64, acm_vm::VmId)> = Vec::new();
        let mut rttfs: Vec<f64> = Vec::new();
        loop {
            let mut spares = self.pool.counts().standby;
            if spares == 0 {
                break;
            }
            candidates.clear();
            {
                let pairs: Vec<(&acm_vm::Vm, f64)> = self
                    .pool
                    .vms()
                    .iter()
                    .filter(|vm| vm.is_active())
                    .map(|vm| (vm, hint))
                    .collect();
                self.rttf_source.predict_many(&pairs, now, &mut rttfs);
                candidates.extend(
                    pairs
                        .iter()
                        .zip(&rttfs)
                        .filter(|(_, rttf)| **rttf < threshold)
                        .map(|((vm, _), rttf)| (*rttf, vm.id())),
                );
            }
            if candidates.is_empty() {
                break;
            }
            // Stable sort: equal RTTFs keep pool order, matching the old
            // first-on-tie rescan.
            candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite RTTF"));
            for &(_, id) in &candidates {
                if spares == 0 {
                    break;
                }
                self.pool
                    .vm_mut(id)
                    .expect("candidate id")
                    .start_rejuvenation(now, self.config.rejuvenation_time);
                self.stats.proactive += 1;
                spares -= 1;
                self.pool.replenish_active(now);
            }
        }
        self.pool.publish_gauges();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_sim::time::Duration;
    use acm_vm::VmFlavor;

    fn mk_region(total: usize, active: usize, lambda_hint: f64) -> RegionSim {
        RegionSim::new(
            RegionConfig::new("evt", VmFlavor::m3_medium(), total, active),
            RttfSource::Oracle,
            lambda_hint,
            SimRng::new(5),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn serves_round_robin_across_active_vms() {
        let mut region = mk_region(4, 3, 5.0);
        for _ in 0..9 {
            assert!(region.serve(t(0)).is_some());
        }
        let stats = region.stats();
        assert_eq!(stats.completed, 9);
        assert_eq!(stats.dropped, 0);
        // Every active VM served exactly 3 requests.
        for vm in region.pool().vms().iter().filter(|v| v.is_active()) {
            assert_eq!(vm.total_completed(), 3, "{}", vm.id());
        }
    }

    #[test]
    fn drops_when_nothing_is_active() {
        let mut region = mk_region(2, 1, 5.0);
        let id = region.pool().active_ids()[0];
        region
            .pool
            .vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(60));
        assert!(region.serve(t(1)).is_none());
        assert_eq!(region.stats().dropped, 1);
        // The next control tick promotes the standby and service resumes.
        region.control_tick(t(2));
        assert!(region.serve(t(3)).is_some());
    }

    #[test]
    fn sustained_load_triggers_proactive_rejuvenation() {
        let mut region = mk_region(4, 3, 12.0);
        let mut now = t(0);
        // Serve many requests with periodic controller ticks.
        for step in 0..40_000u64 {
            let _ = region.serve(now);
            if step % 300 == 0 {
                now += Duration::from_secs(25);
                region.control_tick(now);
            }
        }
        let stats = region.stats();
        assert!(stats.proactive > 0, "no proactive rejuvenations: {stats:?}");
        assert_eq!(stats.reactive, 0, "oracle must preempt failures: {stats:?}");
        assert!(stats.completed > 35_000);
    }

    #[test]
    fn begin_finish_tracks_inflight() {
        let mut region = mk_region(3, 2, 5.0);
        let (vm_a, _) = region.begin(t(0)).expect("serves");
        let (vm_b, _) = region.begin(t(0)).expect("serves");
        assert_ne!(vm_a, vm_b, "round robin alternates");
        // Same VM again: second concurrent request on vm_a.
        let (vm_c, out_c) = region.begin(t(0)).expect("serves");
        assert_eq!(vm_c, vm_a);
        assert_eq!(region.pool().vm(vm_a).unwrap().inflight(), 2);
        // Concurrency dilates the sojourn.
        assert!(out_c.response_s > 0.0);
        region.finish(vm_a);
        region.finish(vm_a);
        region.finish(vm_b);
        assert_eq!(region.pool().vm(vm_a).unwrap().inflight(), 0);
        assert_eq!(region.pool().vm(vm_b).unwrap().inflight(), 0);
        // finish() after a rejuvenation is harmless.
        region
            .pool
            .vm_mut(vm_a)
            .unwrap()
            .start_rejuvenation(t(1), Duration::from_secs(60));
        region.finish(vm_a);
    }

    #[test]
    fn lambda_hint_validation() {
        let mut region = mk_region(2, 1, 1.0);
        region.set_lambda_hint(7.5);
        // Behavioural check: serving still works after the update.
        assert!(region.serve(t(0)).is_some());
    }

    #[test]
    fn era_grain_and_event_grain_agree_on_lifecycle_counts() {
        // Same pool shape, comparable load: both grains should rejuvenate
        // at the same order of magnitude over the same simulated horizon.
        let lambda_region = 36.0;
        let mut event = mk_region(6, 4, lambda_region / 4.0);
        let mut now = t(0);
        let horizon = 3600u64;
        let mut served = 0u64;
        // ~9 req/s/VM × 4 VMs over an hour, with 30 s ticks.
        let mut rng = SimRng::new(9);
        while now < t(horizon) {
            let n = rng.poisson(lambda_region * 30.0);
            for _ in 0..n {
                event.serve(now);
                served += 1;
            }
            now += Duration::from_secs(30);
            event.control_tick(now);
        }
        assert!(served > 100_000);
        let ev = event.stats();

        let mut era = crate::vmc::Vmc::new(
            RegionConfig::new("era", VmFlavor::m3_medium(), 6, 4),
            RttfSource::Oracle,
            SimRng::new(5),
        );
        let mut now = t(0);
        while now < t(horizon) {
            era.process_era(now, Duration::from_secs(30), lambda_region);
            now += Duration::from_secs(30);
        }
        let era_total = era.proactive_total() + era.reactive_total();
        let ev_total = ev.proactive + ev.reactive;
        assert!(ev_total > 0 && era_total > 0);
        let ratio = ev_total as f64 / era_total as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "grains disagree: event {ev_total} vs era {era_total}"
        );
    }
}
