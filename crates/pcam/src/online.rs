//! Online feature labelling and drift detection (extension).
//!
//! F2PM's initial phase trains the RTTF models once, offline. In a live
//! deployment the anomaly profile can change (a new code release leaks
//! differently), silently invalidating the models. This module provides
//! the two pieces a production VMC needs to notice and recover:
//!
//! * [`OnlineLabeler`] — retroactive labelling: the monitoring agent keeps
//!   every feature snapshot; when a VM reaches its failure point the
//!   snapshots become supervised rows (`RTTF = t_fail − t_snapshot`).
//!   Proactive rejuvenations *censor* their snapshots (the true failure
//!   time was never observed), exactly as in survival analysis.
//! * [`DriftMonitor`] — a sliding-window miss-rate detector: when the
//!   fraction of failures the predictor failed to preempt (reactive
//!   failures) exceeds a bound, the predictor should be retrained on the
//!   freshly labelled data.

use acm_ml::dataset::Dataset;
use acm_sim::time::SimTime;
use acm_vm::{FeatureVec, VmId, FEATURE_NAMES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Retroactive labeller for the F2PM feature stream.
#[derive(Debug, Clone)]
pub struct OnlineLabeler {
    pending: BTreeMap<VmId, Vec<(SimTime, FeatureVec)>>,
    db: Dataset,
    /// Censored lower-bound rows: the VM survived at least `bound` seconds
    /// past the snapshot (it was rejuvenated then, so the true RTTF was
    /// never observed but is provably ≥ the bound).
    censored: Vec<(FeatureVec, f64)>,
    censored_snapshots: u64,
    dropped_out_of_order: u64,
    dropped_non_finite: u64,
}

impl Default for OnlineLabeler {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineLabeler {
    /// Creates an empty labeller.
    pub fn new() -> Self {
        OnlineLabeler {
            pending: BTreeMap::new(),
            db: Dataset::new(FEATURE_NAMES),
            censored: Vec::new(),
            censored_snapshots: 0,
            dropped_out_of_order: 0,
            dropped_non_finite: 0,
        }
    }

    /// Records a feature snapshot for a VM (call once per era per VM).
    pub fn observe(&mut self, vm: VmId, now: SimTime, features: FeatureVec) {
        self.pending.entry(vm).or_default().push((now, features));
    }

    /// Filters one pending snapshot against the outcome instant `at`,
    /// counting (instead of silently discarding) snapshots a buggy feature
    /// pipeline produced: out-of-order timestamps and non-finite features.
    fn admit(&mut self, t: SimTime, features: &FeatureVec, at: SimTime) -> bool {
        if t > at {
            self.dropped_out_of_order += 1;
            return false;
        }
        if !features.is_finite() {
            self.dropped_non_finite += 1;
            return false;
        }
        true
    }

    /// The VM reached its failure point at `at`: every pending snapshot
    /// becomes a labelled row with `RTTF = at − t_snapshot`. Returns how
    /// many rows were labelled.
    pub fn on_failure(&mut self, vm: VmId, at: SimTime) -> usize {
        self.on_failure_rows(vm, at).len()
    }

    /// [`OnlineLabeler::on_failure`], additionally returning the freshly
    /// labelled `(features, rttf)` rows so shadow evaluation can score
    /// live models on exactly the rows this failure produced.
    pub fn on_failure_rows(&mut self, vm: VmId, at: SimTime) -> Vec<(FeatureVec, f64)> {
        let Some(snapshots) = self.pending.remove(&vm) else {
            return Vec::new();
        };
        let mut rows = Vec::new();
        for (t, features) in snapshots {
            if !self.admit(t, &features, at) {
                continue;
            }
            let rttf = at.since(t).as_secs_f64();
            self.db.push(features.as_slice().to_vec(), rttf);
            rows.push((features, rttf));
        }
        rows
    }

    /// The VM was proactively rejuvenated at `at`: its pending snapshots
    /// are censored — the true failure time was never observed, but the VM
    /// provably survived `at − t_snapshot`, so each snapshot is retained
    /// as a censored lower-bound row. Returns the newly retained rows.
    pub fn on_rejuvenation(&mut self, vm: VmId, at: SimTime) -> Vec<(FeatureVec, f64)> {
        let Some(snapshots) = self.pending.remove(&vm) else {
            return Vec::new();
        };
        self.censored_snapshots += snapshots.len() as u64;
        let mut rows = Vec::new();
        for (t, features) in snapshots {
            if !self.admit(t, &features, at) {
                continue;
            }
            let bound = at.since(t).as_secs_f64();
            self.censored.push((features, bound));
            rows.push((features, bound));
        }
        rows
    }

    /// The labelled database harvested so far.
    pub fn database(&self) -> &Dataset {
        &self.db
    }

    /// Labelled rows available for retraining.
    pub fn labelled_rows(&self) -> usize {
        self.db.len()
    }

    /// Censored lower-bound rows `(features, survived_at_least_s)`
    /// retained from proactive rejuvenations.
    pub fn censored_rows(&self) -> &[(FeatureVec, f64)] {
        &self.censored
    }

    /// Snapshots whose VM was rejuvenated before failing (counter kept
    /// from before censored rows were retained: every censored snapshot
    /// counts, including ones the admission filter then drops).
    pub fn censored_snapshots(&self) -> u64 {
        self.censored_snapshots
    }

    /// Snapshots dropped because they post-dated their VM's outcome.
    pub fn dropped_out_of_order(&self) -> u64 {
        self.dropped_out_of_order
    }

    /// Snapshots dropped because the feature vector was not finite.
    pub fn dropped_non_finite(&self) -> u64 {
        self.dropped_non_finite
    }

    /// Snapshots still awaiting an outcome.
    pub fn pending_snapshots(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }
}

/// Configuration of the per-region [`DriftMonitor`], lifted out of the
/// construction site so deployments can tune the detector. The defaults
/// reproduce the historical hard-coded values byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Sliding window length (end-of-life events remembered).
    pub window: usize,
    /// Declare drift when the reactive miss fraction exceeds this.
    pub miss_bound: f64,
    /// Minimum observations before drift can be declared.
    pub min_samples: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 32,
            miss_bound: 0.5,
            min_samples: 8,
        }
    }
}

impl DriftConfig {
    /// Sanity-checks the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("drift window must be > 0".into());
        }
        if !(self.miss_bound > 0.0 && self.miss_bound <= 1.0) {
            return Err(format!(
                "drift miss_bound out of (0, 1]: {}",
                self.miss_bound
            ));
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(format!(
                "drift min_samples out of [1, window]: {}",
                self.min_samples
            ));
        }
        Ok(())
    }

    /// Builds the monitor this configuration describes.
    pub fn monitor(&self) -> DriftMonitor {
        DriftMonitor::new(self.window, self.miss_bound, self.min_samples)
    }
}

/// Sliding-window predictor-miss detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftMonitor {
    /// Ring buffer of recent failure outcomes: `true` = reactive (missed).
    window: Vec<bool>,
    capacity: usize,
    next: usize,
    filled: usize,
    /// Declare drift when the miss fraction exceeds this (with a full
    /// enough window).
    miss_bound: f64,
    /// Minimum observations before drift can be declared.
    min_samples: usize,
}

impl DriftMonitor {
    /// Creates a monitor over the last `capacity` failure events, flagging
    /// drift when more than `miss_bound` of them were reactive.
    pub fn new(capacity: usize, miss_bound: f64, min_samples: usize) -> Self {
        assert!(capacity > 0 && (0.0..=1.0).contains(&miss_bound));
        assert!(min_samples > 0 && min_samples <= capacity);
        DriftMonitor {
            window: vec![false; capacity],
            capacity,
            next: 0,
            filled: 0,
            miss_bound,
            min_samples,
        }
    }

    /// Records one end-of-life event: `reactive = true` when the VM failed
    /// before the predictor acted.
    pub fn record(&mut self, reactive: bool) {
        self.window[self.next] = reactive;
        self.next = (self.next + 1) % self.capacity;
        self.filled = (self.filled + 1).min(self.capacity);
    }

    /// Fraction of recent end-of-life events the predictor missed.
    pub fn miss_rate(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        let misses = self.window[..self.filled].iter().filter(|m| **m).count();
        misses as f64 / self.filled as f64
    }

    /// True when enough evidence has accumulated that the deployed
    /// predictor no longer fits the environment.
    pub fn drifted(&self) -> bool {
        self.filled >= self.min_samples && self.miss_rate() > self.miss_bound
    }

    /// [`DriftMonitor::record`] plus causal instrumentation: when this
    /// observation flips the monitor into the drifted state on a tracing
    /// hub, a root `drift.signal` span/event is opened (drift is a first
    /// cause, like a fault) and its context returned so retraining can be
    /// chained off it. Inert on non-tracing hubs — the event stream stays
    /// byte-identical to an untraced run.
    pub fn record_with_obs(
        &mut self,
        reactive: bool,
        obs: &acm_obs::ObsHandle,
        t_us: u64,
        region: &str,
    ) -> Option<acm_obs::TraceContext> {
        let was_drifted = self.drifted();
        self.record(reactive);
        if !was_drifted && self.drifted() && obs.trace_enabled() {
            return obs.emit_caused(
                t_us,
                "drift.signal",
                vec![
                    ("region", acm_obs::Value::from(region.to_string())),
                    ("miss_rate", acm_obs::Value::from(self.miss_rate())),
                ],
                None,
            );
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_ml::model::ModelKind;
    use acm_ml::toolchain::F2pmToolchain;
    use acm_sim::rng::SimRng;
    use acm_sim::time::Duration;
    use acm_vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmState};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn snapshot(vm: &Vm, now: SimTime, lambda: f64) -> FeatureVec {
        vm.features(now, lambda)
    }

    #[test]
    fn failure_labels_all_pending_snapshots() {
        let mut labeler = OnlineLabeler::new();
        let vm_id = VmId(1);
        let vm = Vm::new(
            vm_id,
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(1),
        );
        labeler.observe(vm_id, t(0), snapshot(&vm, t(0), 10.0));
        labeler.observe(vm_id, t(30), snapshot(&vm, t(30), 10.0));
        assert_eq!(labeler.pending_snapshots(), 2);
        let labelled = labeler.on_failure(vm_id, t(100));
        assert_eq!(labelled, 2);
        assert_eq!(labeler.labelled_rows(), 2);
        // Labels are the true remaining times.
        let mut targets = labeler.database().targets().to_vec();
        targets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(targets, vec![70.0, 100.0]);
    }

    #[test]
    fn rejuvenation_censors() {
        let mut labeler = OnlineLabeler::new();
        let vm = VmId(2);
        labeler.observe(vm, t(10), FeatureVec::new([1.0; acm_vm::FEATURE_COUNT]));
        let rows = labeler.on_rejuvenation(vm, t(40));
        assert_eq!(labeler.labelled_rows(), 0);
        assert_eq!(labeler.censored_snapshots(), 1);
        // The snapshot is retained as a censored lower bound, not dropped:
        // the VM provably survived 30 s past the snapshot.
        assert_eq!(rows.len(), 1);
        assert_eq!(labeler.censored_rows().len(), 1);
        assert_eq!(labeler.censored_rows()[0].1, 30.0);
        // A later failure report for the same VM labels nothing.
        assert_eq!(labeler.on_failure(vm, t(50)), 0);
    }

    #[test]
    fn bad_snapshots_are_counted_not_silently_dropped() {
        let mut labeler = OnlineLabeler::new();
        let vm = VmId(3);
        // Good, out-of-order (post-dates the failure), and non-finite rows.
        labeler.observe(vm, t(0), FeatureVec::new([1.0; acm_vm::FEATURE_COUNT]));
        labeler.observe(vm, t(200), FeatureVec::new([1.0; acm_vm::FEATURE_COUNT]));
        labeler.observe(vm, t(1), FeatureVec::new([f64::NAN; acm_vm::FEATURE_COUNT]));
        assert_eq!(labeler.on_failure(vm, t(100)), 1);
        assert_eq!(labeler.dropped_out_of_order(), 1);
        assert_eq!(labeler.dropped_non_finite(), 1);

        // The same admission filter guards censored rows; the historical
        // censored_snapshots counter still counts every censored snapshot.
        let vm2 = VmId(4);
        labeler.observe(vm2, t(300), FeatureVec::new([1.0; acm_vm::FEATURE_COUNT]));
        labeler.observe(
            vm2,
            t(2),
            FeatureVec::new([f64::INFINITY; acm_vm::FEATURE_COUNT]),
        );
        let rows = labeler.on_rejuvenation(vm2, t(250));
        assert!(rows.is_empty());
        assert_eq!(labeler.censored_snapshots(), 2);
        assert_eq!(labeler.dropped_out_of_order(), 2);
        assert_eq!(labeler.dropped_non_finite(), 2);
        assert!(labeler.censored_rows().is_empty());
    }

    #[test]
    fn drift_config_validates_and_matches_legacy_monitor() {
        let cfg = DriftConfig::default();
        cfg.validate().unwrap();
        // Defaults reproduce the historical hard-coded construction.
        let m = cfg.monitor();
        assert_eq!(m.capacity, 32);
        assert_eq!(m.miss_bound, 0.5);
        assert_eq!(m.min_samples, 8);

        assert!(DriftConfig {
            window: 0,
            ..DriftConfig::default()
        }
        .validate()
        .is_err());
        assert!(DriftConfig {
            miss_bound: 0.0,
            ..DriftConfig::default()
        }
        .validate()
        .is_err());
        assert!(DriftConfig {
            miss_bound: 1.5,
            ..DriftConfig::default()
        }
        .validate()
        .is_err());
        assert!(DriftConfig {
            min_samples: 64,
            ..DriftConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn drift_monitor_flags_sustained_misses() {
        let mut m = DriftMonitor::new(10, 0.5, 5);
        for _ in 0..4 {
            m.record(true);
        }
        assert!(!m.drifted(), "below min_samples");
        m.record(true);
        assert!(m.drifted(), "5/5 misses is drift");
        // Healthy streak washes the window clean.
        for _ in 0..10 {
            m.record(false);
        }
        assert!(!m.drifted());
        assert_eq!(m.miss_rate(), 0.0);
    }

    /// The end-to-end drift story: a predictor trained on the original
    /// anomaly profile degrades when the profile changes (leaks triple);
    /// retraining on online-harvested labels restores accuracy.
    #[test]
    fn retraining_on_harvested_labels_recovers_from_drift() {
        let flavor = VmFlavor::m3_medium();
        let spec = FailureSpec::default();
        let lambda = 12.0;
        let era = Duration::from_secs(30);

        // Phase 1: offline training on the ORIGINAL profile.
        let mut rng = SimRng::new(3);
        let old_cfg = AnomalyConfig::default();
        let old_db = crate::training::collect_database(
            &flavor,
            &old_cfg,
            &spec,
            &crate::training::CollectionConfig::default(),
            &mut rng,
        );
        let toolchain = F2pmToolchain {
            models: vec![ModelKind::RepTree],
            ..Default::default()
        };
        let (stale, _) = toolchain.run(&old_db, &mut rng);

        // Phase 2: the environment drifts — leaks are 3x larger.
        let new_cfg = AnomalyConfig {
            leak_size_mb: old_cfg.leak_size_mb * 3.0,
            ..old_cfg.clone()
        };
        // Harvest labels online by watching VMs run to failure under the
        // NEW profile (reactive path: no rejuvenation).
        let mut labeler = OnlineLabeler::new();
        for seed in 0..12 {
            let id = VmId(seed as u32);
            let mut vm = Vm::new(
                id,
                flavor.clone(),
                new_cfg.clone(),
                spec.clone(),
                VmState::Active,
                SimRng::new(100 + seed),
            );
            let mut now = SimTime::ZERO;
            loop {
                labeler.observe(id, now, vm.features(now, lambda));
                vm.process_era(now, era, lambda);
                now += era;
                if let VmState::Failed { at, .. } = vm.state() {
                    labeler.on_failure(id, at);
                    break;
                }
                assert!(now < t(20_000), "never failed");
            }
        }
        assert!(
            labeler.labelled_rows() > 60,
            "rows {}",
            labeler.labelled_rows()
        );

        // Phase 3: retrain on the harvested labels.
        let mut rng2 = SimRng::new(4);
        let (fresh, _) = toolchain.run(labeler.database(), &mut rng2);

        // Score both predictors against ground truth in the NEW world.
        let mut stale_err = 0.0;
        let mut fresh_err = 0.0;
        let mut checks = 0;
        let mut vm = Vm::new(
            VmId(99),
            flavor.clone(),
            new_cfg.clone(),
            spec.clone(),
            VmState::Active,
            SimRng::new(999),
        );
        let mut now = SimTime::ZERO;
        loop {
            let truth = vm.true_rttf(lambda);
            if !truth.is_finite() || truth < 60.0 {
                break;
            }
            let f = vm.features(now, lambda);
            stale_err += (stale.predict(f.as_slice()) - truth).abs() / truth;
            fresh_err += (fresh.predict(f.as_slice()) - truth).abs() / truth;
            checks += 1;
            vm.process_era(now, era, lambda);
            now += era;
            if !vm.is_active() {
                break;
            }
        }
        assert!(checks >= 3);
        let stale_err = stale_err / checks as f64;
        let fresh_err = fresh_err / checks as f64;
        assert!(
            fresh_err < stale_err * 0.6,
            "retraining should recover accuracy: stale {stale_err:.3}, fresh {fresh_err:.3}"
        );
        // And the stale model is genuinely broken after the drift.
        assert!(stale_err > 0.3, "drift too mild to matter: {stale_err:.3}");
    }
}
