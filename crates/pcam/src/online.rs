//! Online feature labelling and drift detection (extension).
//!
//! F2PM's initial phase trains the RTTF models once, offline. In a live
//! deployment the anomaly profile can change (a new code release leaks
//! differently), silently invalidating the models. This module provides
//! the two pieces a production VMC needs to notice and recover:
//!
//! * [`OnlineLabeler`] — retroactive labelling: the monitoring agent keeps
//!   every feature snapshot; when a VM reaches its failure point the
//!   snapshots become supervised rows (`RTTF = t_fail − t_snapshot`).
//!   Proactive rejuvenations *censor* their snapshots (the true failure
//!   time was never observed), exactly as in survival analysis.
//! * [`DriftMonitor`] — a sliding-window miss-rate detector: when the
//!   fraction of failures the predictor failed to preempt (reactive
//!   failures) exceeds a bound, the predictor should be retrained on the
//!   freshly labelled data.

use acm_ml::dataset::Dataset;
use acm_sim::time::SimTime;
use acm_vm::{FeatureVec, VmId, FEATURE_NAMES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Retroactive labeller for the F2PM feature stream.
#[derive(Debug, Clone)]
pub struct OnlineLabeler {
    pending: BTreeMap<VmId, Vec<(SimTime, FeatureVec)>>,
    db: Dataset,
    censored_snapshots: u64,
}

impl Default for OnlineLabeler {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineLabeler {
    /// Creates an empty labeller.
    pub fn new() -> Self {
        OnlineLabeler {
            pending: BTreeMap::new(),
            db: Dataset::new(FEATURE_NAMES),
            censored_snapshots: 0,
        }
    }

    /// Records a feature snapshot for a VM (call once per era per VM).
    pub fn observe(&mut self, vm: VmId, now: SimTime, features: FeatureVec) {
        self.pending.entry(vm).or_default().push((now, features));
    }

    /// The VM reached its failure point at `at`: every pending snapshot
    /// becomes a labelled row with `RTTF = at − t_snapshot`. Returns how
    /// many rows were labelled.
    pub fn on_failure(&mut self, vm: VmId, at: SimTime) -> usize {
        let Some(snapshots) = self.pending.remove(&vm) else {
            return 0;
        };
        let mut labelled = 0;
        for (t, features) in snapshots {
            if t > at || !features.is_finite() {
                continue;
            }
            let rttf = at.since(t).as_secs_f64();
            self.db.push(features.as_slice().to_vec(), rttf);
            labelled += 1;
        }
        labelled
    }

    /// The VM was proactively rejuvenated: its pending snapshots are
    /// censored (no failure time was observed) and dropped.
    pub fn on_rejuvenation(&mut self, vm: VmId) {
        if let Some(snapshots) = self.pending.remove(&vm) {
            self.censored_snapshots += snapshots.len() as u64;
        }
    }

    /// The labelled database harvested so far.
    pub fn database(&self) -> &Dataset {
        &self.db
    }

    /// Labelled rows available for retraining.
    pub fn labelled_rows(&self) -> usize {
        self.db.len()
    }

    /// Snapshots discarded because their VM was rejuvenated first.
    pub fn censored_snapshots(&self) -> u64 {
        self.censored_snapshots
    }

    /// Snapshots still awaiting an outcome.
    pub fn pending_snapshots(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }
}

/// Sliding-window predictor-miss detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftMonitor {
    /// Ring buffer of recent failure outcomes: `true` = reactive (missed).
    window: Vec<bool>,
    capacity: usize,
    next: usize,
    filled: usize,
    /// Declare drift when the miss fraction exceeds this (with a full
    /// enough window).
    miss_bound: f64,
    /// Minimum observations before drift can be declared.
    min_samples: usize,
}

impl DriftMonitor {
    /// Creates a monitor over the last `capacity` failure events, flagging
    /// drift when more than `miss_bound` of them were reactive.
    pub fn new(capacity: usize, miss_bound: f64, min_samples: usize) -> Self {
        assert!(capacity > 0 && (0.0..=1.0).contains(&miss_bound));
        assert!(min_samples > 0 && min_samples <= capacity);
        DriftMonitor {
            window: vec![false; capacity],
            capacity,
            next: 0,
            filled: 0,
            miss_bound,
            min_samples,
        }
    }

    /// Records one end-of-life event: `reactive = true` when the VM failed
    /// before the predictor acted.
    pub fn record(&mut self, reactive: bool) {
        self.window[self.next] = reactive;
        self.next = (self.next + 1) % self.capacity;
        self.filled = (self.filled + 1).min(self.capacity);
    }

    /// Fraction of recent end-of-life events the predictor missed.
    pub fn miss_rate(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        let misses = self.window[..self.filled].iter().filter(|m| **m).count();
        misses as f64 / self.filled as f64
    }

    /// True when enough evidence has accumulated that the deployed
    /// predictor no longer fits the environment.
    pub fn drifted(&self) -> bool {
        self.filled >= self.min_samples && self.miss_rate() > self.miss_bound
    }

    /// [`DriftMonitor::record`] plus causal instrumentation: when this
    /// observation flips the monitor into the drifted state on a tracing
    /// hub, a root `drift.signal` span/event is opened (drift is a first
    /// cause, like a fault) and its context returned so retraining can be
    /// chained off it. Inert on non-tracing hubs — the event stream stays
    /// byte-identical to an untraced run.
    pub fn record_with_obs(
        &mut self,
        reactive: bool,
        obs: &acm_obs::ObsHandle,
        t_us: u64,
        region: &str,
    ) -> Option<acm_obs::TraceContext> {
        let was_drifted = self.drifted();
        self.record(reactive);
        if !was_drifted && self.drifted() && obs.trace_enabled() {
            return obs.emit_caused(
                t_us,
                "drift.signal",
                vec![
                    ("region", acm_obs::Value::from(region.to_string())),
                    ("miss_rate", acm_obs::Value::from(self.miss_rate())),
                ],
                None,
            );
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_ml::model::ModelKind;
    use acm_ml::toolchain::F2pmToolchain;
    use acm_sim::rng::SimRng;
    use acm_sim::time::Duration;
    use acm_vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmState};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn snapshot(vm: &Vm, now: SimTime, lambda: f64) -> FeatureVec {
        vm.features(now, lambda)
    }

    #[test]
    fn failure_labels_all_pending_snapshots() {
        let mut labeler = OnlineLabeler::new();
        let vm_id = VmId(1);
        let vm = Vm::new(
            vm_id,
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            VmState::Active,
            SimRng::new(1),
        );
        labeler.observe(vm_id, t(0), snapshot(&vm, t(0), 10.0));
        labeler.observe(vm_id, t(30), snapshot(&vm, t(30), 10.0));
        assert_eq!(labeler.pending_snapshots(), 2);
        let labelled = labeler.on_failure(vm_id, t(100));
        assert_eq!(labelled, 2);
        assert_eq!(labeler.labelled_rows(), 2);
        // Labels are the true remaining times.
        let mut targets = labeler.database().targets().to_vec();
        targets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(targets, vec![70.0, 100.0]);
    }

    #[test]
    fn rejuvenation_censors() {
        let mut labeler = OnlineLabeler::new();
        let vm = VmId(2);
        labeler.observe(vm, t(0), FeatureVec::new([1.0; acm_vm::FEATURE_COUNT]));
        labeler.on_rejuvenation(vm);
        assert_eq!(labeler.labelled_rows(), 0);
        assert_eq!(labeler.censored_snapshots(), 1);
        // A later failure report for the same VM labels nothing.
        assert_eq!(labeler.on_failure(vm, t(10)), 0);
    }

    #[test]
    fn drift_monitor_flags_sustained_misses() {
        let mut m = DriftMonitor::new(10, 0.5, 5);
        for _ in 0..4 {
            m.record(true);
        }
        assert!(!m.drifted(), "below min_samples");
        m.record(true);
        assert!(m.drifted(), "5/5 misses is drift");
        // Healthy streak washes the window clean.
        for _ in 0..10 {
            m.record(false);
        }
        assert!(!m.drifted());
        assert_eq!(m.miss_rate(), 0.0);
    }

    /// The end-to-end drift story: a predictor trained on the original
    /// anomaly profile degrades when the profile changes (leaks triple);
    /// retraining on online-harvested labels restores accuracy.
    #[test]
    fn retraining_on_harvested_labels_recovers_from_drift() {
        let flavor = VmFlavor::m3_medium();
        let spec = FailureSpec::default();
        let lambda = 12.0;
        let era = Duration::from_secs(30);

        // Phase 1: offline training on the ORIGINAL profile.
        let mut rng = SimRng::new(3);
        let old_cfg = AnomalyConfig::default();
        let old_db = crate::training::collect_database(
            &flavor,
            &old_cfg,
            &spec,
            &crate::training::CollectionConfig::default(),
            &mut rng,
        );
        let toolchain = F2pmToolchain {
            models: vec![ModelKind::RepTree],
            ..Default::default()
        };
        let (stale, _) = toolchain.run(&old_db, &mut rng);

        // Phase 2: the environment drifts — leaks are 3x larger.
        let new_cfg = AnomalyConfig {
            leak_size_mb: old_cfg.leak_size_mb * 3.0,
            ..old_cfg.clone()
        };
        // Harvest labels online by watching VMs run to failure under the
        // NEW profile (reactive path: no rejuvenation).
        let mut labeler = OnlineLabeler::new();
        for seed in 0..12 {
            let id = VmId(seed as u32);
            let mut vm = Vm::new(
                id,
                flavor.clone(),
                new_cfg.clone(),
                spec.clone(),
                VmState::Active,
                SimRng::new(100 + seed),
            );
            let mut now = SimTime::ZERO;
            loop {
                labeler.observe(id, now, vm.features(now, lambda));
                vm.process_era(now, era, lambda);
                now += era;
                if let VmState::Failed { at, .. } = vm.state() {
                    labeler.on_failure(id, at);
                    break;
                }
                assert!(now < t(20_000), "never failed");
            }
        }
        assert!(
            labeler.labelled_rows() > 60,
            "rows {}",
            labeler.labelled_rows()
        );

        // Phase 3: retrain on the harvested labels.
        let mut rng2 = SimRng::new(4);
        let (fresh, _) = toolchain.run(labeler.database(), &mut rng2);

        // Score both predictors against ground truth in the NEW world.
        let mut stale_err = 0.0;
        let mut fresh_err = 0.0;
        let mut checks = 0;
        let mut vm = Vm::new(
            VmId(99),
            flavor.clone(),
            new_cfg.clone(),
            spec.clone(),
            VmState::Active,
            SimRng::new(999),
        );
        let mut now = SimTime::ZERO;
        loop {
            let truth = vm.true_rttf(lambda);
            if !truth.is_finite() || truth < 60.0 {
                break;
            }
            let f = vm.features(now, lambda);
            stale_err += (stale.predict(f.as_slice()) - truth).abs() / truth;
            fresh_err += (fresh.predict(f.as_slice()) - truth).abs() / truth;
            checks += 1;
            vm.process_era(now, era, lambda);
            now += era;
            if !vm.is_active() {
                break;
            }
        }
        assert!(checks >= 3);
        let stale_err = stale_err / checks as f64;
        let fresh_err = fresh_err / checks as f64;
        assert!(
            fresh_err < stale_err * 0.6,
            "retraining should recover accuracy: stale {stale_err:.3}, fresh {fresh_err:.3}"
        );
        // And the stale model is genuinely broken after the drift.
        assert!(stale_err > 0.3, "drift too mild to matter: {stale_err:.3}");
    }
}
