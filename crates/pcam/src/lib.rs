//! PCAM: proactive cloud availability management for a single region.
//!
//! PCAM (paper ref \[6\]) "keeps some VMs hosting server replicas in the
//! ACTIVE state, while other VMs in the STANDBY state. The state of a VM is
//! controlled by a Virtual Machine Controller (VMC) [...] Whenever the
//! estimated RTTF of an ACTIVE VM is less than a threshold, VMC sends an
//! ACTIVATE command to a VM in the STANDBY state and a REJUVENATE command
//! to the about-to-fail VM" (paper Sec. III). The VMC also hosts the
//! intra-region load balancer that spreads client requests over ACTIVE VMs.
//!
//! * [`pool`] — the region's VM pool with ACTIVE/STANDBY bookkeeping.
//! * [`balancer`] — intra-region load-balancing strategies.
//! * [`vmc`] — the controller: RTTF prediction, proactive rejuvenation,
//!   reactive failure recovery, RMTTF reporting, era processing.
//! * [`training`] — harvesting the F2PM feature database from instrumented
//!   runs of the VM model.
//! * [`events`] — the per-request grain: an event-driven region façade for
//!   discrete-event simulations.
//! * [`online`] — retroactive feature labelling and predictor-drift
//!   detection (the retraining loop a live deployment needs).
//! * [`lifecycle`] — the versioned model registry: background refits on
//!   the exec pool, shadow evaluation with censored-aware error, and
//!   promote/rollback of the serving predictor.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod balancer;
pub mod events;
pub mod lifecycle;
pub mod online;
pub mod pool;
pub mod training;
pub mod vmc;

pub use balancer::BalancerStrategy;
pub use events::{RegionSim, RegionSimStats};
pub use lifecycle::{LifecycleConfig, LifecycleEvent, ModelLifecycle, ShadowScore};
pub use online::{DriftConfig, DriftMonitor, OnlineLabeler};
pub use pool::VmPool;
pub use vmc::{RegionConfig, RegionEraReport, RttfSource, Vmc};
