//! The region's VM pool.
//!
//! Owns every VM replica of one cloud region and maintains the
//! ACTIVE/STANDBY invariant: the pool tries to keep `target_active` VMs
//! serving; standbys are promoted when actives rejuvenate or fail, and
//! rejuvenated VMs come back as standbys.

use acm_obs::{Counter, Gauge, ObsHandle};
use acm_sim::rng::SimRng;
use acm_sim::time::SimTime;
use acm_vm::service::RequestOutcome;
use acm_vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmId, VmState};
use serde::{Deserialize, Serialize};

/// Sentinel for "id not present" in the id → slot index.
const NO_SLOT: u32 = u32::MAX;

/// Pool statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolCounts {
    /// Serving VMs.
    pub active: usize,
    /// Healthy spares.
    pub standby: usize,
    /// VMs undergoing rejuvenation.
    pub rejuvenating: usize,
    /// VMs sitting in the failed state (not yet sent to rejuvenation).
    pub failed: usize,
}

impl PoolCounts {
    /// Total pool size.
    pub fn total(&self) -> usize {
        self.active + self.standby + self.rejuvenating + self.failed
    }
}

/// A region's VM pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmPool {
    vms: Vec<Vm>,
    target_active: usize,
    next_id: u32,
    flavor: VmFlavor,
    anomaly_cfg: AnomalyConfig,
    failure_spec: FailureSpec,
    rng: SimRng,
    /// `id.0` → slot in `vms` (`NO_SLOT` when absent), so per-request VM
    /// lookup is O(1) instead of a linear scan.
    id_index: Vec<u32>,
    /// Cached ids of ACTIVE VMs in `vms` order, rebuilt lazily when a
    /// lifecycle transition marks it stale. Keeps the dispatch hot path
    /// ([`VmPool::active_ids_cached`]) allocation-free.
    active_cache: Vec<VmId>,
    active_dirty: bool,
    /// Lifecycle/dispatch instrumentation; inert until [`VmPool::set_obs`].
    ctr_dispatch: Counter,
    ctr_activations: Counter,
    ctr_demotions: Counter,
    ctr_rejuv_completed: Counter,
    /// Live ACTIVE/STANDBY/REJUV/FAILED census gauges, refreshed by
    /// [`VmPool::publish_gauges`] at control-era boundaries.
    g_active: Gauge,
    g_standby: Gauge,
    g_rejuvenating: Gauge,
    g_failed: Gauge,
}

impl VmPool {
    /// Builds a pool of `total` identical VMs, the first `target_active` of
    /// which start ACTIVE and the rest STANDBY.
    pub fn new(
        flavor: VmFlavor,
        anomaly_cfg: AnomalyConfig,
        failure_spec: FailureSpec,
        total: usize,
        target_active: usize,
        mut rng: SimRng,
    ) -> Self {
        assert!(total > 0, "pool must contain at least one VM");
        assert!(
            target_active > 0 && target_active <= total,
            "target_active must be in 1..=total"
        );
        let vms = (0..total)
            .map(|i| {
                let state = if i < target_active {
                    VmState::Active
                } else {
                    VmState::Standby
                };
                Vm::new(
                    VmId(i as u32),
                    flavor.clone(),
                    anomaly_cfg.clone(),
                    failure_spec.clone(),
                    state,
                    rng.split(),
                )
            })
            .collect();
        let mut pool = VmPool {
            vms,
            target_active,
            next_id: total as u32,
            flavor,
            anomaly_cfg,
            failure_spec,
            rng,
            id_index: Vec::new(),
            active_cache: Vec::with_capacity(target_active),
            active_dirty: true,
            ctr_dispatch: Counter::default(),
            ctr_activations: Counter::default(),
            ctr_demotions: Counter::default(),
            ctr_rejuv_completed: Counter::default(),
            g_active: Gauge::default(),
            g_standby: Gauge::default(),
            g_rejuvenating: Gauge::default(),
            g_failed: Gauge::default(),
        };
        pool.rebuild_index();
        pool
    }

    /// Attaches observability: request dispatch (`acm.pcam.pool.dispatch`),
    /// lifecycle transition counters (`acm.pcam.pool.activations` /
    /// `.demotions` / `.rejuvenations_completed`) and live pool-state
    /// gauges (`acm.pcam.pool.active` / `.standby` / `.rejuvenating` /
    /// `.failed`). The gauges are seeded with the current census so they
    /// read correctly before the first control era.
    pub fn set_obs(&mut self, obs: &ObsHandle) {
        self.set_obs_scoped(obs, None);
    }

    /// Like [`VmPool::set_obs`], but qualifies the pool-state gauges with a
    /// region name (`acm.pcam.pool.<region>.active`, …) so multi-region
    /// deployments expose one live census per pool instead of last-writer-
    /// wins on a shared gauge. Counters stay unqualified: they aggregate
    /// meaningfully across regions.
    pub fn set_obs_scoped(&mut self, obs: &ObsHandle, region: Option<&str>) {
        self.ctr_dispatch = obs.counter("acm.pcam.pool.dispatch");
        self.ctr_activations = obs.counter("acm.pcam.pool.activations");
        self.ctr_demotions = obs.counter("acm.pcam.pool.demotions");
        self.ctr_rejuv_completed = obs.counter("acm.pcam.pool.rejuvenations_completed");
        let gauge = |metric: &str| match region {
            Some(r) => obs.gauge(&format!("acm.pcam.pool.{r}.{metric}")),
            None => obs.gauge(&format!("acm.pcam.pool.{metric}")),
        };
        self.g_active = gauge("active");
        self.g_standby = gauge("standby");
        self.g_rejuvenating = gauge("rejuvenating");
        self.g_failed = gauge("failed");
        self.publish_gauges();
    }

    /// Pushes the current ACTIVE/STANDBY/REJUV/FAILED census into the
    /// pool-state gauges (no-op without [`VmPool::set_obs`]). Called once
    /// per control era rather than per transition so the census scan stays
    /// off the per-request hot path.
    pub fn publish_gauges(&self) {
        let c = self.counts();
        self.g_active.set(c.active as f64);
        self.g_standby.set(c.standby as f64);
        self.g_rejuvenating.set(c.rejuvenating as f64);
        self.g_failed.set(c.failed as f64);
    }

    /// Rebuilds the id → slot map from scratch (construction and the rare
    /// operations that shift `vms`, i.e. [`VmPool::remove_standby`]).
    fn rebuild_index(&mut self) {
        let cap = self
            .vms
            .iter()
            .map(|v| v.id().0 as usize + 1)
            .max()
            .unwrap_or(0);
        self.id_index.clear();
        self.id_index.resize(cap, NO_SLOT);
        for (slot, vm) in self.vms.iter().enumerate() {
            self.id_index[vm.id().0 as usize] = slot as u32;
        }
    }

    fn slot_of(&self, id: VmId) -> Option<usize> {
        match self.id_index.get(id.0 as usize) {
            Some(&slot) if slot != NO_SLOT => Some(slot as usize),
            _ => None,
        }
    }

    /// The flavor every VM in this pool shares.
    pub fn flavor(&self) -> &VmFlavor {
        &self.flavor
    }

    /// The failure spec in force.
    pub fn failure_spec(&self) -> &FailureSpec {
        &self.failure_spec
    }

    /// The anomaly configuration in force.
    pub fn anomaly_config(&self) -> &AnomalyConfig {
        &self.anomaly_cfg
    }

    /// Desired number of simultaneously ACTIVE VMs.
    pub fn target_active(&self) -> usize {
        self.target_active
    }

    /// Adjusts the desired active count (autoscaling). Clamped to pool size.
    pub fn set_target_active(&mut self, target: usize) {
        self.target_active = target.clamp(1, self.vms.len());
    }

    /// All VMs (read).
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// All VMs (write). Conservatively marks the ACTIVE cache stale: the
    /// caller may transition any VM through the returned slice.
    pub fn vms_mut(&mut self) -> &mut [Vm] {
        self.active_dirty = true;
        &mut self.vms
    }

    /// VM lookup by id (O(1)).
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.slot_of(id).map(|slot| &self.vms[slot])
    }

    /// Mutable VM lookup by id (O(1)). Conservatively marks the ACTIVE
    /// cache stale: the caller may transition the VM's lifecycle state.
    pub fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        self.active_dirty = true;
        self.slot_of(id).map(|slot| &mut self.vms[slot])
    }

    /// Starts a request on the given VM without staling the ACTIVE cache
    /// unless the arrival actually tripped the failure predicate (the only
    /// lifecycle transition this call can cause). This is the dispatch hot
    /// path: O(1) lookup, zero allocation.
    pub fn begin_request(
        &mut self,
        id: VmId,
        now: SimTime,
        lambda_hint: f64,
    ) -> Option<RequestOutcome> {
        self.ctr_dispatch.inc();
        let slot = self.slot_of(id)?;
        let vm = &mut self.vms[slot];
        let out = vm.begin_request(now, lambda_hint);
        if out.is_none() {
            // Arrival-triggered failure (ACTIVE → FAILED), or a stale
            // caller-side id; either way the cached ACTIVE set is suspect.
            self.active_dirty = true;
        }
        out
    }

    /// Releases the in-flight slot taken by [`VmPool::begin_request`].
    /// Never a lifecycle transition, so the ACTIVE cache stays valid.
    pub fn end_request(&mut self, id: VmId) {
        if let Some(slot) = self.slot_of(id) {
            self.vms[slot].end_request();
        }
    }

    /// Current state census.
    pub fn counts(&self) -> PoolCounts {
        let mut c = PoolCounts {
            active: 0,
            standby: 0,
            rejuvenating: 0,
            failed: 0,
        };
        for vm in &self.vms {
            match vm.state() {
                VmState::Active => c.active += 1,
                VmState::Standby => c.standby += 1,
                VmState::Rejuvenating { .. } => c.rejuvenating += 1,
                VmState::Failed { .. } => c.failed += 1,
            }
        }
        c
    }

    /// Ids of currently ACTIVE VMs (ascending). Allocates; prefer
    /// [`VmPool::active_ids_cached`] on hot paths.
    pub fn active_ids(&self) -> Vec<VmId> {
        self.vms
            .iter()
            .filter(|v| v.is_active())
            .map(|v| v.id())
            .collect()
    }

    /// Ids of currently ACTIVE VMs (ascending) from the lifecycle-tracked
    /// cache. Rebuilds in place only when a transition staled it, so the
    /// steady-state dispatch path performs no allocation and no scan.
    pub fn active_ids_cached(&mut self) -> &[VmId] {
        if self.active_dirty {
            self.active_cache.clear();
            self.active_cache
                .extend(self.vms.iter().filter(|v| v.is_active()).map(|v| v.id()));
            self.active_dirty = false;
        }
        &self.active_cache
    }

    /// Promotes standbys until the active count reaches the target or the
    /// spares run out. Returns how many were activated.
    pub fn replenish_active(&mut self, now: SimTime) -> usize {
        let active = self.vms.iter().filter(|v| v.is_active()).count();
        if active >= self.target_active {
            return 0;
        }
        let mut need = self.target_active - active;
        let mut activated = 0;
        for vm in &mut self.vms {
            if need == 0 {
                break;
            }
            if vm.is_standby() {
                vm.activate(now);
                activated += 1;
                need -= 1;
            }
        }
        if activated > 0 {
            self.active_dirty = true;
            self.ctr_activations.add(activated as u64);
        }
        activated
    }

    /// Demotes the freshest ACTIVE VMs back to STANDBY while the active
    /// count exceeds the target (autoscaling scale-down). The freshest VM
    /// is demoted so the serving set keeps the damaged VMs visible to the
    /// rejuvenation logic. Returns how many were demoted.
    pub fn demote_excess_active(&mut self, now: SimTime) -> usize {
        // Freshest = fewest requests since refresh; stable sort keeps the
        // original first-on-tie order (pool position).
        let mut active: Vec<(u64, usize)> = self
            .vms
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_active())
            .map(|(slot, v)| (v.anomaly().requests_since_refresh, slot))
            .collect();
        if active.len() <= self.target_active {
            return 0;
        }
        let excess = active.len() - self.target_active;
        active.sort_by_key(|&(requests, _)| requests);
        for &(_, slot) in active.iter().take(excess) {
            self.vms[slot].deactivate(now);
        }
        self.active_dirty = true;
        self.ctr_demotions.add(excess as u64);
        excess
    }

    /// Completes any due rejuvenations. Returns how many finished.
    /// (Rejuvenating → STANDBY never touches the ACTIVE set, so the
    /// dispatch cache stays valid.)
    pub fn poll_rejuvenations(&mut self, now: SimTime) -> usize {
        let finished: usize = self
            .vms
            .iter_mut()
            .map(|v| usize::from(v.poll_rejuvenation(now)))
            .sum();
        if finished > 0 {
            self.ctr_rejuv_completed.add(finished as u64);
        }
        finished
    }

    /// Grows the pool with one fresh STANDBY VM (autoscaling ADDVMS path).
    pub fn add_vm(&mut self) -> VmId {
        let id = VmId(self.next_id);
        self.next_id += 1;
        let child_rng = self.rng.split();
        let slot = self.vms.len() as u32;
        self.vms.push(Vm::new(
            id,
            self.flavor.clone(),
            self.anomaly_cfg.clone(),
            self.failure_spec.clone(),
            VmState::Standby,
            child_rng,
        ));
        let idx = id.0 as usize;
        if self.id_index.len() <= idx {
            self.id_index.resize(idx + 1, NO_SLOT);
        }
        self.id_index[idx] = slot;
        id
    }

    /// Removes one STANDBY VM, if any (autoscaling scale-down). Never
    /// removes serving or rejuvenating VMs.
    pub fn remove_standby(&mut self) -> Option<VmId> {
        let idx = self.vms.iter().position(|v| v.is_standby())?;
        let id = self.vms.remove(idx).id();
        // The removal shifted every later slot; the cache holds ids (still
        // valid — a standby left), but the index must be rebuilt.
        self.rebuild_index();
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_sim::time::Duration;

    fn pool(total: usize, active: usize) -> VmPool {
        VmPool::new(
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            total,
            active,
            SimRng::new(1),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn initial_census_matches_construction() {
        let p = pool(6, 4);
        let c = p.counts();
        assert_eq!(c.active, 4);
        assert_eq!(c.standby, 2);
        assert_eq!(c.total(), 6);
        assert_eq!(p.active_ids().len(), 4);
    }

    #[test]
    #[should_panic(expected = "target_active")]
    fn zero_active_target_panics() {
        let _ = pool(4, 0);
    }

    #[test]
    fn replenish_promotes_standbys() {
        let mut p = pool(5, 3);
        // Rejuvenate one active: census drops to 2 active.
        let id = p.active_ids()[0];
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(60));
        assert_eq!(p.counts().active, 2);
        let activated = p.replenish_active(t(0));
        assert_eq!(activated, 1);
        assert_eq!(p.counts().active, 3);
        assert_eq!(p.counts().standby, 1);
    }

    #[test]
    fn replenish_stops_when_spares_exhausted() {
        let mut p = pool(3, 3); // no standbys at all
        let id = p.active_ids()[0];
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(60));
        assert_eq!(p.replenish_active(t(0)), 0);
        assert_eq!(p.counts().active, 2);
    }

    #[test]
    fn poll_rejuvenations_returns_spares() {
        let mut p = pool(4, 2);
        let id = p.active_ids()[0];
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(30));
        assert_eq!(p.poll_rejuvenations(t(10)), 0);
        assert_eq!(p.poll_rejuvenations(t(30)), 1);
        assert_eq!(p.counts().standby, 3);
    }

    #[test]
    fn add_vm_grows_pool_with_unique_ids() {
        let mut p = pool(3, 2);
        let a = p.add_vm();
        let b = p.add_vm();
        assert_ne!(a, b);
        assert_eq!(p.counts().total(), 5);
        assert_eq!(p.counts().standby, 3);
        assert!(p.vm(a).unwrap().is_standby());
    }

    #[test]
    fn remove_standby_only_takes_spares() {
        let mut p = pool(3, 3);
        assert_eq!(p.remove_standby(), None, "no spares to remove");
        let mut p = pool(4, 3);
        assert!(p.remove_standby().is_some());
        assert_eq!(p.counts().total(), 3);
        assert_eq!(p.counts().active, 3);
    }

    #[test]
    fn set_target_active_clamps() {
        let mut p = pool(4, 2);
        p.set_target_active(100);
        assert_eq!(p.target_active(), 4);
        p.set_target_active(0);
        assert_eq!(p.target_active(), 1);
    }

    #[test]
    fn vm_lookup_by_id() {
        let p = pool(3, 2);
        assert!(p.vm(VmId(2)).is_some());
        assert!(p.vm(VmId(99)).is_none());
    }

    #[test]
    fn lookup_survives_removal_and_growth() {
        let mut p = pool(5, 2); // ids 0..5, actives 0 and 1
        assert!(p.remove_standby().is_some()); // removes id 2, shifts 3 and 4
        for id in [0, 1, 3, 4] {
            assert_eq!(p.vm(VmId(id)).unwrap().id(), VmId(id));
        }
        assert!(p.vm(VmId(2)).is_none());
        let new_id = p.add_vm();
        assert_eq!(new_id, VmId(5));
        assert_eq!(p.vm(new_id).unwrap().id(), new_id);
        assert!(p.vm_mut(VmId(4)).is_some());
    }

    #[test]
    fn cached_active_ids_track_lifecycle_transitions() {
        let mut p = pool(5, 3);
        assert_eq!(p.active_ids_cached().to_vec(), p.active_ids());

        // Rejuvenating an active VM via vm_mut stales the cache.
        let id = p.active_ids()[1];
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(60));
        assert_eq!(p.active_ids_cached().to_vec(), p.active_ids());
        assert!(!p.active_ids_cached().contains(&id));

        // Replenish promotes a standby; cache follows.
        p.replenish_active(t(1));
        assert_eq!(p.active_ids_cached().to_vec(), p.active_ids());
        assert_eq!(p.active_ids_cached().len(), 3);

        // Rejuvenation completion restores a standby, not an active.
        p.poll_rejuvenations(t(120));
        assert_eq!(p.active_ids_cached().to_vec(), p.active_ids());

        // Scale down demotes; cache follows.
        p.set_target_active(1);
        p.demote_excess_active(t(121));
        assert_eq!(p.active_ids_cached().to_vec(), p.active_ids());
        assert_eq!(p.active_ids_cached().len(), 1);
    }

    #[test]
    fn pool_metrics_count_dispatch_and_lifecycle() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut p = pool(4, 2);
        p.set_obs(&obs);
        let id = p.active_ids()[0];
        p.begin_request(id, t(0), 5.0).expect("serves");
        p.end_request(id);
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(30));
        p.replenish_active(t(0)); // promotes one standby
        p.poll_rejuvenations(t(30)); // completes the rejuvenation
        p.set_target_active(1);
        p.demote_excess_active(t(31)); // demotes one active
        assert_eq!(obs.counter("acm.pcam.pool.dispatch").value(), 1);
        assert_eq!(obs.counter("acm.pcam.pool.activations").value(), 1);
        assert_eq!(
            obs.counter("acm.pcam.pool.rejuvenations_completed").value(),
            1
        );
        assert_eq!(obs.counter("acm.pcam.pool.demotions").value(), 1);
    }

    #[test]
    fn pool_gauges_track_census() {
        let obs = acm_obs::Obs::new(acm_obs::ObsConfig::default());
        let mut p = pool(5, 3);
        p.set_obs(&obs);
        // Seeded at attach time.
        assert_eq!(obs.gauge("acm.pcam.pool.active").value(), 3.0);
        assert_eq!(obs.gauge("acm.pcam.pool.standby").value(), 2.0);
        // A transition followed by publish refreshes every gauge to the
        // live census.
        let id = p.active_ids()[0];
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(60));
        p.replenish_active(t(0));
        p.publish_gauges();
        let c = p.counts();
        assert_eq!(obs.gauge("acm.pcam.pool.active").value(), c.active as f64);
        assert_eq!(obs.gauge("acm.pcam.pool.standby").value(), c.standby as f64);
        assert_eq!(
            obs.gauge("acm.pcam.pool.rejuvenating").value(),
            c.rejuvenating as f64
        );
        assert_eq!(obs.gauge("acm.pcam.pool.failed").value(), c.failed as f64);
    }

    #[test]
    fn begin_request_wrapper_matches_direct_call() {
        let mut p = pool(3, 2);
        let id = p.active_ids()[0];
        let out = p.begin_request(id, t(0), 5.0).expect("active VM serves");
        assert!(out.response_s > 0.0);
        assert_eq!(p.vm(id).unwrap().inflight(), 1);
        p.end_request(id);
        assert_eq!(p.vm(id).unwrap().inflight(), 0);
        // Unknown and non-active targets are rejected, not panicked.
        assert!(p.begin_request(VmId(99), t(0), 5.0).is_none());
        let standby = p.vms().iter().find(|v| v.is_standby()).unwrap().id();
        assert!(p.begin_request(standby, t(0), 5.0).is_none());
    }
}
