//! The region's VM pool.
//!
//! Owns every VM replica of one cloud region and maintains the
//! ACTIVE/STANDBY invariant: the pool tries to keep `target_active` VMs
//! serving; standbys are promoted when actives rejuvenate or fail, and
//! rejuvenated VMs come back as standbys.

use acm_sim::rng::SimRng;
use acm_sim::time::SimTime;
use acm_vm::{AnomalyConfig, FailureSpec, Vm, VmFlavor, VmId, VmState};
use serde::{Deserialize, Serialize};

/// Pool statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolCounts {
    /// Serving VMs.
    pub active: usize,
    /// Healthy spares.
    pub standby: usize,
    /// VMs undergoing rejuvenation.
    pub rejuvenating: usize,
    /// VMs sitting in the failed state (not yet sent to rejuvenation).
    pub failed: usize,
}

impl PoolCounts {
    /// Total pool size.
    pub fn total(&self) -> usize {
        self.active + self.standby + self.rejuvenating + self.failed
    }
}

/// A region's VM pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmPool {
    vms: Vec<Vm>,
    target_active: usize,
    next_id: u32,
    flavor: VmFlavor,
    anomaly_cfg: AnomalyConfig,
    failure_spec: FailureSpec,
    rng: SimRng,
}

impl VmPool {
    /// Builds a pool of `total` identical VMs, the first `target_active` of
    /// which start ACTIVE and the rest STANDBY.
    pub fn new(
        flavor: VmFlavor,
        anomaly_cfg: AnomalyConfig,
        failure_spec: FailureSpec,
        total: usize,
        target_active: usize,
        mut rng: SimRng,
    ) -> Self {
        assert!(total > 0, "pool must contain at least one VM");
        assert!(
            target_active > 0 && target_active <= total,
            "target_active must be in 1..=total"
        );
        let vms = (0..total)
            .map(|i| {
                let state = if i < target_active {
                    VmState::Active
                } else {
                    VmState::Standby
                };
                Vm::new(
                    VmId(i as u32),
                    flavor.clone(),
                    anomaly_cfg.clone(),
                    failure_spec.clone(),
                    state,
                    rng.split(),
                )
            })
            .collect();
        VmPool {
            vms,
            target_active,
            next_id: total as u32,
            flavor,
            anomaly_cfg,
            failure_spec,
            rng,
        }
    }

    /// The flavor every VM in this pool shares.
    pub fn flavor(&self) -> &VmFlavor {
        &self.flavor
    }

    /// The failure spec in force.
    pub fn failure_spec(&self) -> &FailureSpec {
        &self.failure_spec
    }

    /// The anomaly configuration in force.
    pub fn anomaly_config(&self) -> &AnomalyConfig {
        &self.anomaly_cfg
    }

    /// Desired number of simultaneously ACTIVE VMs.
    pub fn target_active(&self) -> usize {
        self.target_active
    }

    /// Adjusts the desired active count (autoscaling). Clamped to pool size.
    pub fn set_target_active(&mut self, target: usize) {
        self.target_active = target.clamp(1, self.vms.len());
    }

    /// All VMs (read).
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// All VMs (write).
    pub fn vms_mut(&mut self) -> &mut [Vm] {
        &mut self.vms
    }

    /// VM lookup by id.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.iter().find(|v| v.id() == id)
    }

    /// Mutable VM lookup by id.
    pub fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        self.vms.iter_mut().find(|v| v.id() == id)
    }

    /// Current state census.
    pub fn counts(&self) -> PoolCounts {
        let mut c = PoolCounts {
            active: 0,
            standby: 0,
            rejuvenating: 0,
            failed: 0,
        };
        for vm in &self.vms {
            match vm.state() {
                VmState::Active => c.active += 1,
                VmState::Standby => c.standby += 1,
                VmState::Rejuvenating { .. } => c.rejuvenating += 1,
                VmState::Failed { .. } => c.failed += 1,
            }
        }
        c
    }

    /// Ids of currently ACTIVE VMs (ascending).
    pub fn active_ids(&self) -> Vec<VmId> {
        self.vms
            .iter()
            .filter(|v| v.is_active())
            .map(|v| v.id())
            .collect()
    }

    /// Promotes standbys until the active count reaches the target or the
    /// spares run out. Returns how many were activated.
    pub fn replenish_active(&mut self, now: SimTime) -> usize {
        let mut activated = 0;
        loop {
            let counts = self.counts();
            if counts.active >= self.target_active {
                break;
            }
            let Some(standby) = self.vms.iter_mut().find(|v| v.is_standby()) else {
                break;
            };
            standby.activate(now);
            activated += 1;
        }
        activated
    }

    /// Demotes the freshest ACTIVE VMs back to STANDBY while the active
    /// count exceeds the target (autoscaling scale-down). The freshest VM
    /// is demoted so the serving set keeps the damaged VMs visible to the
    /// rejuvenation logic. Returns how many were demoted.
    pub fn demote_excess_active(&mut self, now: SimTime) -> usize {
        let mut demoted = 0;
        loop {
            let active_ids = self.active_ids();
            if active_ids.len() <= self.target_active {
                break;
            }
            // Freshest = fewest requests since refresh.
            let freshest = active_ids
                .iter()
                .min_by_key(|id| {
                    self.vm(**id)
                        .map(|v| v.anomaly().requests_since_refresh)
                        .unwrap_or(u64::MAX)
                })
                .copied()
                .expect("non-empty active set");
            self.vm_mut(freshest).expect("active id").deactivate(now);
            demoted += 1;
        }
        demoted
    }

    /// Completes any due rejuvenations. Returns how many finished.
    pub fn poll_rejuvenations(&mut self, now: SimTime) -> usize {
        self.vms
            .iter_mut()
            .map(|v| usize::from(v.poll_rejuvenation(now)))
            .sum()
    }

    /// Grows the pool with one fresh STANDBY VM (autoscaling ADDVMS path).
    pub fn add_vm(&mut self) -> VmId {
        let id = VmId(self.next_id);
        self.next_id += 1;
        let child_rng = self.rng.split();
        self.vms.push(Vm::new(
            id,
            self.flavor.clone(),
            self.anomaly_cfg.clone(),
            self.failure_spec.clone(),
            VmState::Standby,
            child_rng,
        ));
        id
    }

    /// Removes one STANDBY VM, if any (autoscaling scale-down). Never
    /// removes serving or rejuvenating VMs.
    pub fn remove_standby(&mut self) -> Option<VmId> {
        let idx = self.vms.iter().position(|v| v.is_standby())?;
        Some(self.vms.remove(idx).id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acm_sim::time::Duration;

    fn pool(total: usize, active: usize) -> VmPool {
        VmPool::new(
            VmFlavor::m3_medium(),
            AnomalyConfig::default(),
            FailureSpec::default(),
            total,
            active,
            SimRng::new(1),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn initial_census_matches_construction() {
        let p = pool(6, 4);
        let c = p.counts();
        assert_eq!(c.active, 4);
        assert_eq!(c.standby, 2);
        assert_eq!(c.total(), 6);
        assert_eq!(p.active_ids().len(), 4);
    }

    #[test]
    #[should_panic(expected = "target_active")]
    fn zero_active_target_panics() {
        let _ = pool(4, 0);
    }

    #[test]
    fn replenish_promotes_standbys() {
        let mut p = pool(5, 3);
        // Rejuvenate one active: census drops to 2 active.
        let id = p.active_ids()[0];
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(60));
        assert_eq!(p.counts().active, 2);
        let activated = p.replenish_active(t(0));
        assert_eq!(activated, 1);
        assert_eq!(p.counts().active, 3);
        assert_eq!(p.counts().standby, 1);
    }

    #[test]
    fn replenish_stops_when_spares_exhausted() {
        let mut p = pool(3, 3); // no standbys at all
        let id = p.active_ids()[0];
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(60));
        assert_eq!(p.replenish_active(t(0)), 0);
        assert_eq!(p.counts().active, 2);
    }

    #[test]
    fn poll_rejuvenations_returns_spares() {
        let mut p = pool(4, 2);
        let id = p.active_ids()[0];
        p.vm_mut(id)
            .unwrap()
            .start_rejuvenation(t(0), Duration::from_secs(30));
        assert_eq!(p.poll_rejuvenations(t(10)), 0);
        assert_eq!(p.poll_rejuvenations(t(30)), 1);
        assert_eq!(p.counts().standby, 3);
    }

    #[test]
    fn add_vm_grows_pool_with_unique_ids() {
        let mut p = pool(3, 2);
        let a = p.add_vm();
        let b = p.add_vm();
        assert_ne!(a, b);
        assert_eq!(p.counts().total(), 5);
        assert_eq!(p.counts().standby, 3);
        assert!(p.vm(a).unwrap().is_standby());
    }

    #[test]
    fn remove_standby_only_takes_spares() {
        let mut p = pool(3, 3);
        assert_eq!(p.remove_standby(), None, "no spares to remove");
        let mut p = pool(4, 3);
        assert!(p.remove_standby().is_some());
        assert_eq!(p.counts().total(), 3);
        assert_eq!(p.counts().active, 3);
    }

    #[test]
    fn set_target_active_clamps() {
        let mut p = pool(4, 2);
        p.set_target_active(100);
        assert_eq!(p.target_active(), 4);
        p.set_target_active(0);
        assert_eq!(p.target_active(), 1);
    }

    #[test]
    fn vm_lookup_by_id() {
        let p = pool(3, 2);
        assert!(p.vm(VmId(2)).is_some());
        assert!(p.vm(VmId(99)).is_none());
    }
}
