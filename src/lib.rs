//! # ACM Framework — facade crate
//!
//! Single-dependency entry point re-exporting the whole reproduction of
//! *Proactive Cloud Management for Highly Heterogeneous Multi-Cloud
//! Infrastructures* (Pellegrini, Di Sanzo, Avresky — IPDPSW 2016).
//!
//! ```
//! use acm::prelude::*;
//!
//! // Two heterogeneous regions, Policy 2 (Available Resources Estimation).
//! let mut cfg = ExperimentConfig::two_region_fig3(PolicyKind::AvailableResources, 42);
//! cfg.predictor = acm::core::config::PredictorChoice::Oracle; // skip training for the demo
//! cfg.eras = 5;
//! let telemetry = run_experiment(&cfg);
//! assert_eq!(telemetry.eras(), 5);
//! ```
//!
//! The member crates can also be used individually:
//!
//! * [`sim`] — deterministic discrete-event kernel,
//! * [`exec`] — std-only work-stealing thread pool with deterministic
//!   index-ordered collect (the engine behind every `par_iter` call site;
//!   sized by `ACM_THREADS` or [`exec::configure_threads`]),
//! * [`vm`] — VM / anomaly / failure-point substrate,
//! * [`ml`] — the F2PM model toolchain (OLS, Ridge, Lasso, REP-Tree, M5P,
//!   SVR, LS-SVM),
//! * [`obs`] — in-process observability (metrics, spans, decision log),
//! * [`overlay`] — controller overlay network and leader election,
//! * [`pcam`] — per-region proactive rejuvenation and local balancing,
//! * [`workload`] — TPC-W-like closed-loop traffic generation,
//! * [`router`] — line-rate request-routing data plane (weighted
//!   power-of-two-choices over the planned fractions, latency-aware),
//! * [`core`] — the ACM control loop and the three load-balancing policies.

pub use acm_chaos as chaos;
pub use acm_core as core;
pub use acm_exec as exec;
pub use acm_ml as ml;
pub use acm_obs as obs;
pub use acm_overlay as overlay;
pub use acm_pcam as pcam;
pub use acm_router as router;
pub use acm_sim as sim;
pub use acm_vm as vm;
pub use acm_workload as workload;

/// Convenient glob-import surface for examples and quick starts.
pub mod prelude {
    pub use acm_core::config::ExperimentConfig;
    pub use acm_core::framework::run_experiment;
    pub use acm_core::policy::PolicyKind;
    pub use acm_core::telemetry::ExperimentTelemetry;
    pub use acm_sim::{Duration, SimRng, SimTime, Simulator};
    pub use acm_vm::{AnomalyConfig, FailureSpec, VmFlavor};
}
