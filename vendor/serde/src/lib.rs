//! Offline stub of `serde`.
//!
//! The workspace compiles in a container without registry access, so the
//! real serde cannot be fetched. Nothing in the workspace serialises through
//! serde (all telemetry files are hand-written CSV/JSON), so marker traits
//! and no-op derives are sufficient to keep every `#[derive(Serialize,
//! Deserialize)]` compiling unchanged.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
