//! Offline stub of `criterion`.
//!
//! The build container has no registry access, so the real criterion cannot
//! be fetched. This stub keeps every `cargo bench` target compiling with the
//! same API surface (`Criterion`, groups, `BenchmarkId`, the two macros) and
//! performs a genuine — if simpler — measurement: warm up, auto-calibrate a
//! batch size, time a fixed number of samples, and report the median
//! time-per-iteration on stdout.
//!
//! Set `ACM_BENCH_FAST=1` to shrink the measurement budget (used by CI to
//! smoke-test the bench targets without paying full measurement time).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn fast_mode() -> bool {
    std::env::var_os("ACM_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// One measured sample set, reported as the median time per iteration.
fn measure<O, F: FnMut() -> O>(mut routine: F, samples: usize, budget: Duration) -> Duration {
    // Warm-up + batch calibration: grow the batch until one batch takes
    // long enough for the clock to resolve it well.
    let mut batch = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }

    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    let deadline = Instant::now() + budget;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        per_iter.push(start.elapsed() / batch as u32);
        if Instant::now() > deadline {
            break;
        }
    }
    per_iter.sort();
    per_iter[per_iter.len() / 2]
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Timing context handed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, storing the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, routine: F) {
        self.result = Some(measure(routine, self.samples, self.budget));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let budget = if fast_mode() {
        Duration::from_millis(50)
    } else {
        Duration::from_secs(3)
    };
    let samples = if fast_mode() {
        samples.min(10)
    } else {
        samples
    };
    let mut b = Bencher {
        samples,
        budget,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(t) => println!("{name:<40} time: [{}]", format_duration(t)),
        None => println!("{name:<40} (no measurement)"),
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget (accepted for API
    /// compatibility; the stub keeps its own budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benches a routine under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Benches a routine with an input value under `group_name/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; prints nothing extra).
    pub fn finish(self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benches a standalone routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 30, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 30,
            _criterion: self,
        }
    }
}

/// Mirror of `criterion_group!`: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_time() {
        std::env::set_var("ACM_BENCH_FAST", "1");
        let t = measure(
            || black_box(42u64).wrapping_mul(3),
            5,
            Duration::from_millis(20),
        );
        assert!(t.as_nanos() > 0 || t.is_zero()); // must not panic, at minimum
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).name, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}
