//! Offline facade of `rayon`, backed by the `acm-exec` work-stealing pool.
//!
//! The build container has no registry access, so the real rayon cannot be
//! fetched. This facade keeps rayon's call-site surface — `par_iter`,
//! `into_par_iter`, `map`/`collect`/`sum`, `join`, `scope` — but executes
//! on [`acm_exec`]'s std-only pool, which honours the `ACM_THREADS`
//! knob (`1` = exact sequential path) and collects results in input
//! order, so parallel runs stay byte-identical to sequential ones.
//!
//! Differences from real rayon, acceptable for this workspace:
//!
//! * parallel iterators materialise their input into a `Vec` up front
//!   (every call site iterates small collections of coarse work items);
//! * only the combinators the workspace uses are provided (`map`,
//!   `collect`, `sum`);
//! * [`scope`] task closures take no `&Scope` argument, so tasks cannot
//!   spawn siblings.

/// Pool-backed stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Materialises the input for parallel consumption.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Pool-backed stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a borrow of the underlying collection's elements).
    type Item: Send + 'data;
    /// Parallel iteration by reference.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Item = <&'data I as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        self.into_par_iter()
    }
}

/// Collection types a parallel pipeline can [`ParMap::collect`] into,
/// mirroring `rayon::iter::FromParallelIterator`.
pub trait FromParallelIterator<T> {
    /// Builds the collection from index-ordered results.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

/// A materialised parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` on the global pool.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items in input order.
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_par_vec(self.items)
    }

    /// Sums the items (no mapping work to parallelise).
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// A mapped parallel pipeline awaiting its terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map on the global pool and collects results in input
    /// order — byte-identical to the sequential pipeline.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        C::from_par_vec(acm_exec::map_collect(self.items, self.f))
    }

    /// Runs the map on the global pool and sums the results in input
    /// order (kept sequential for floating-point reproducibility).
    pub fn sum<R, S>(self) -> S
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        S: std::iter::Sum<R>,
    {
        acm_exec::map_collect(self.items, self.f).into_iter().sum()
    }
}

pub mod prelude {
    //! Mirror of `rayon::prelude`.
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

pub use acm_exec::Scope;

/// Pool-backed stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    acm_exec::join(a, b)
}

/// Pool-backed stand-in for `rayon::scope` (see the module docs for the
/// spawn-signature difference).
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope, '_>) -> R,
{
    acm_exec::scope(f)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_is_input_ordered() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = xs.into_par_iter().sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn map_sum_runs_on_the_pool() {
        let total: u64 = (0..100u64).into_par_iter().map(|x| x * x).sum();
        assert_eq!(total, (0..100u64).map(|x| x * x).sum());
    }

    #[test]
    fn collect_matches_sequential_at_any_thread_count() {
        let expect: Vec<String> = (0..64).map(|i| format!("#{i}")).collect();
        let got: Vec<String> = (0..64).into_par_iter().map(|i| format!("#{i}")).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_joins_spawned_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }
}
