//! Offline stub of `rayon`: the `par_iter`/`into_par_iter` entry points with
//! a strictly sequential implementation.
//!
//! The build container has no registry access, so the real rayon cannot be
//! fetched. The workspace only uses data-parallel `map/collect` pipelines,
//! which degrade gracefully to sequential iteration — and sequential
//! execution is deterministic by construction, which the simulation's
//! reproducibility tests appreciate.

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The underlying (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// "Parallel" iteration — sequential in this stub.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> T::IntoIter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The underlying (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item: 'data;
    /// "Parallel" borrowing iteration — sequential in this stub.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

pub mod prelude {
    //! Mirror of `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_is_sequential_map_collect() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = xs.into_par_iter().sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
