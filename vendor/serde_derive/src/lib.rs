//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` across its data types but
//! never actually serialises through serde (all file output is hand-written
//! CSV/JSON). The build container has no registry access, so these derives
//! expand to nothing: the attribute is accepted and no code is generated.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
