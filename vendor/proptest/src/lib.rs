//! Offline stub of `proptest`.
//!
//! The build container has no registry access, so the real proptest cannot
//! be fetched. This stub keeps the workspace's property tests running as
//! genuine randomised tests: each `proptest!` test draws a configurable
//! number of cases (default 64, override with `PROPTEST_CASES`) from a
//! deterministic per-test RNG seeded by the test's name, so failures are
//! reproducible run-over-run. What it does **not** do is shrink failing
//! inputs — the failure report prints the case number instead.
//!
//! Supported surface (everything the workspace uses):
//! `Strategy` (with `prop_map`), numeric range strategies (half-open and
//! inclusive), 2- and 3-tuples of strategies, `any::<T>()` for primitives,
//! `collection::vec(strategy, len | range)`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` macros.

use std::ops::{Range, RangeInclusive};

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* generator driving case generation.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from the test name so every test has its own stable stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name; never zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 as u128;
                (lo as i128 + (rng.next_u64() as u128 % (span + 1)) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Include the endpoint with the smallest representable step.
        lo + rng.next_f64() * (hi - lo) * (1.0 + f64::EPSILON)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample(rng) as f32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Mirror of `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Mirror of `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Mirror of `proptest!`: expands each property into a `#[test]` that runs
/// [`cases`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cases = $crate::cases();
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..cases {
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, cases, e);
                }
            }
        }
    )*};
}

/// Mirror of `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..17,
            y in -2.5f64..7.5,
            z in 0usize..=4,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..7.5).contains(&y), "y out of range: {y}");
            prop_assert!(z <= 4);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            pairs in crate::collection::vec((0.0f64..1.0, 1u32..5), 2..9),
            flags in crate::collection::vec(any::<bool>(), 3),
        ) {
            prop_assert!(pairs.len() >= 2 && pairs.len() < 9);
            prop_assert_eq!(flags.len(), 3);
            for (f, n) in &pairs {
                prop_assert!(*f >= 0.0 && *f < 1.0 && *n >= 1 && *n < 5);
            }
        }

        #[test]
        fn prop_map_applies(
            doubled in (1u64..10).prop_map(|v| v * 2),
        ) {
            prop_assert!(doubled % 2 == 0);
            prop_assert_ne!(doubled, 1);
        }
    }
}
